// Message envelopes.
//
// A JXTA message envelopes arbitrary data; here the envelope is a type tag
// plus a binary payload produced by net/wire.h. The network charges the
// bandwidth model with the payload size plus a fixed header, so the byte
// volumes reported by the statistics module are real serialized sizes.

#ifndef CODB_NET_MESSAGE_H_
#define CODB_NET_MESSAGE_H_

#include <cstdint>
#include <vector>

#include "net/peer_id.h"

namespace codb {

// Wire-level message kinds. The values are part of the serialized format.
enum class MessageType : uint16_t {
  // Discovery protocol (net layer).
  kAdvertisement = 1,

  // coDB protocol (core layer). Declared here so the envelope is complete;
  // payload formats live in core/protocol.h.
  kConfigBroadcast = 10,
  kUpdateRequest = 11,
  kUpdateData = 12,
  kLinkClosed = 13,
  kUpdateAck = 14,
  kUpdateComplete = 15,
  kQueryRequest = 16,
  kQueryResult = 17,
  kQueryDone = 18,
  kStatsRequest = 19,
  kStatsReport = 20,

  // Reliability layer (core/reliability.h): immediate transport-level
  // receipt for a sequenced message. Distinct from kUpdateAck, which is
  // the deferred Dijkstra–Scholten engagement ack.
  kDeliveryAck = 21,

  // Membership layer (membership/heartbeat.h): periodic liveness beacon
  // with incarnation + peer-health digest, and its echo (carrying the
  // beacon's send timestamp back for RTT measurement).
  kHeartbeat = 22,
  kHeartbeatAck = 23,

  // Super-peer federation (core/super_peer.h): merged statistics and
  // metrics aggregate exchanged between super-peers.
  kFederationReport = 24,

  // Delta/projected config distribution (core/config_distribution.h).
  // kConfigSlice carries one peer's projected slice of the configuration;
  // kConfigDelta a version-keyed patch between two slice versions;
  // kConfigFetch a receiver's back-order request after a version gap or
  // checksum mismatch; kConfigAck the receiver's applied-version receipt.
  kConfigSlice = 25,
  kConfigDelta = 26,
  kConfigFetch = 27,
  kConfigAck = 28,
};

const char* MessageTypeName(MessageType type);

struct Message {
  PeerId src;
  PeerId dst;
  MessageType type = MessageType::kAdvertisement;
  std::vector<uint8_t> payload;

  // Per-flow sequence number stamped by the reliability layer
  // (core/reliability.h); 0 means unsequenced. Part of the envelope, so
  // it is charged to the bandwidth model via kHeaderBytes.
  uint32_t seq = 0;

  // Tracing correlation id linking the sender's span to the delivery span
  // (obs/trace.h). In-memory only: never serialized, never charged to the
  // bandwidth model, 0 when tracing is off.
  uint64_t trace_id = 0;

  // Maintenance traffic (heartbeats and their acks) does not count toward
  // quiescence: Run() returns once no *foreground* events remain even if
  // maintenance messages are still queued, so self-re-arming beacon loops
  // cannot keep the network "busy" forever. RunUntil() processes both.
  // In-memory scheduling attribute — never serialized.
  bool maintenance = false;

  // Set by the reliability layer on resends (core/reliability.h) so the
  // cost ledger (obs/cost_ledger.h) can charge retransmitted bytes to the
  // reliability class instead of the payload's own class. In-memory only:
  // never serialized, never part of the wire format.
  bool retransmit = false;

  // Fixed envelope header: source, destination, type, length (12 bytes)
  // plus the sequence number (4 bytes).
  static constexpr size_t kHeaderBytes = 16;

  // Bytes charged to the bandwidth model.
  size_t WireSize() const { return kHeaderBytes + payload.size(); }
};

inline const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kAdvertisement:
      return "ADVERTISEMENT";
    case MessageType::kConfigBroadcast:
      return "CONFIG_BROADCAST";
    case MessageType::kUpdateRequest:
      return "UPDATE_REQUEST";
    case MessageType::kUpdateData:
      return "UPDATE_DATA";
    case MessageType::kLinkClosed:
      return "LINK_CLOSED";
    case MessageType::kUpdateAck:
      return "UPDATE_ACK";
    case MessageType::kUpdateComplete:
      return "UPDATE_COMPLETE";
    case MessageType::kQueryRequest:
      return "QUERY_REQUEST";
    case MessageType::kQueryResult:
      return "QUERY_RESULT";
    case MessageType::kQueryDone:
      return "QUERY_DONE";
    case MessageType::kStatsRequest:
      return "STATS_REQUEST";
    case MessageType::kStatsReport:
      return "STATS_REPORT";
    case MessageType::kDeliveryAck:
      return "DELIVERY_ACK";
    case MessageType::kHeartbeat:
      return "HEARTBEAT";
    case MessageType::kHeartbeatAck:
      return "HEARTBEAT_ACK";
    case MessageType::kFederationReport:
      return "FEDERATION_REPORT";
    case MessageType::kConfigSlice:
      return "CONFIG_SLICE";
    case MessageType::kConfigDelta:
      return "CONFIG_DELTA";
    case MessageType::kConfigFetch:
      return "CONFIG_FETCH";
    case MessageType::kConfigAck:
      return "CONFIG_ACK";
  }
  return "UNKNOWN";
}

}  // namespace codb

#endif  // CODB_NET_MESSAGE_H_
