// Peer identifiers.
//
// JXTA gives peers IP-independent identifiers; here a PeerId is an opaque
// dense handle assigned by the Network when the peer joins. Human-readable
// names live in the peer's advertisement.

#ifndef CODB_NET_PEER_ID_H_
#define CODB_NET_PEER_ID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace codb {

struct PeerId {
  uint32_t value = kInvalid;

  static constexpr uint32_t kInvalid = 0xFFFFFFFF;

  constexpr PeerId() = default;
  constexpr explicit PeerId(uint32_t v) : value(v) {}

  bool valid() const { return value != kInvalid; }
  std::string ToString() const { return "peer" + std::to_string(value); }

  friend bool operator==(PeerId a, PeerId b) { return a.value == b.value; }
  friend auto operator<=>(PeerId a, PeerId b) = default;
};

struct PeerIdHash {
  size_t operator()(PeerId id) const {
    return std::hash<uint32_t>()(id.value);
  }
};

}  // namespace codb

#endif  // CODB_NET_PEER_ID_H_
