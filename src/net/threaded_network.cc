#include "net/threaded_network.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace codb {

namespace {

std::pair<uint32_t, uint32_t> PipeKey(PeerId from, PeerId to) {
  return {from.value, to.value};
}

}  // namespace

ThreadedNetwork::ThreadedNetwork()
    : epoch_(std::chrono::steady_clock::now()) {
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ThreadedNetwork::~ThreadedNetwork() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
}

int64_t ThreadedNetwork::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

PeerId ThreadedNetwork::Join(const std::string& name, NetworkPeer* peer) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint32_t index = static_cast<uint32_t>(workers_.size());
  auto worker = std::make_unique<Worker>();
  worker->name = name;
  worker->handler = peer;
  worker->alive = true;
  worker->thread = std::thread([this, index] { WorkerLoop(index); });
  workers_.push_back(std::move(worker));
  Tracer::Global().SetNodeName(index, name);
  return PeerId(index);
}

Status ThreadedNetwork::Leave(PeerId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!id.valid() || id.value >= workers_.size() ||
      !workers_[id.value]->alive) {
    return Status::NotFound(id.ToString() + " is not on the network");
  }
  Worker& worker = *workers_[id.value];
  worker.alive = false;
  worker.handler = nullptr;
  // Unprocessed inbox items are dropped; keep the busy count honest
  // (queued maintenance items were never counted).
  for (const InboxItem& item : worker.inbox) {
    if (!item.maintenance) --busy_;
  }
  worker.inbox.clear();
  for (auto& [key, pipe] : pipes_) {
    if (!pipe.open) continue;
    if (key.first == id.value || key.second == id.value) {
      pipe.open = false;
      if (key.first == id.value) {
        NotifyPipeClosedLocked(PeerId(key.second), id);
      }
    }
  }
  work_cv_.notify_all();
  if (busy_ == 0) quiescent_cv_.notify_all();
  return Status::Ok();
}

bool ThreadedNetwork::IsAlive(PeerId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return id.valid() && id.value < workers_.size() &&
         workers_[id.value]->alive;
}

std::string ThreadedNetwork::NameOf(PeerId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!id.valid() || id.value >= workers_.size()) return "<unknown>";
  return workers_[id.value]->name;
}

Result<PeerId> ThreadedNetwork::FindByName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->alive && workers_[i]->name == name) {
      return PeerId(static_cast<uint32_t>(i));
    }
  }
  return Status::NotFound("no alive peer named '" + name + "'");
}

std::vector<PeerId> ThreadedNetwork::AlivePeers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PeerId> out;
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i]->alive) out.push_back(PeerId(static_cast<uint32_t>(i)));
  }
  return out;
}

Status ThreadedNetwork::OpenPipe(PeerId a, PeerId b, LinkProfile profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto alive = [this](PeerId id) {
    return id.valid() && id.value < workers_.size() &&
           workers_[id.value]->alive;
  };
  if (!alive(a) || !alive(b)) {
    return Status::Unavailable("both endpoints must be alive to open a pipe");
  }
  if (a == b) return Status::InvalidArgument("cannot open a pipe to self");
  if (!profile.fault.Active() && default_fault_.Active()) {
    profile.fault = default_fault_;
  }
  pipes_[PipeKey(a, b)] = {profile, true, 0,
                           FaultInjector(profile.fault, a, b)};
  pipes_[PipeKey(b, a)] = {profile, true, 0,
                           FaultInjector(profile.fault, b, a)};
  return Status::Ok();
}

Status ThreadedNetwork::SetFaultProfile(PeerId a, PeerId b,
                                        const FaultProfile& fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto forward = pipes_.find(PipeKey(a, b));
  auto backward = pipes_.find(PipeKey(b, a));
  if (forward == pipes_.end() || backward == pipes_.end()) {
    return Status::NotFound("no pipe between " + a.ToString() + " and " +
                            b.ToString());
  }
  forward->second.profile.fault = fault;
  forward->second.injector = FaultInjector(fault, a, b);
  backward->second.profile.fault = fault;
  backward->second.injector = FaultInjector(fault, b, a);
  return Status::Ok();
}

void ThreadedNetwork::SetDefaultFaultProfile(const FaultProfile& fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  default_fault_ = fault;
  for (auto& [key, pipe] : pipes_) {
    if (!pipe.open) continue;
    pipe.profile.fault = fault;
    pipe.injector =
        FaultInjector(fault, PeerId(key.first), PeerId(key.second));
  }
}

Status ThreadedNetwork::ClosePipe(PeerId a, PeerId b) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto forward = pipes_.find(PipeKey(a, b));
  auto backward = pipes_.find(PipeKey(b, a));
  if (forward == pipes_.end() && backward == pipes_.end()) {
    return Status::NotFound("no pipe between " + a.ToString() + " and " +
                            b.ToString());
  }
  bool was_open = (forward != pipes_.end() && forward->second.open) ||
                  (backward != pipes_.end() && backward->second.open);
  if (forward != pipes_.end()) forward->second.open = false;
  if (backward != pipes_.end()) backward->second.open = false;
  if (was_open) {
    NotifyPipeClosedLocked(a, b);
    NotifyPipeClosedLocked(b, a);
  }
  return Status::Ok();
}

const ThreadedNetwork::PipeState* ThreadedNetwork::FindPipeLocked(
    PeerId from, PeerId to) const {
  auto it = pipes_.find(PipeKey(from, to));
  return it == pipes_.end() ? nullptr : &it->second;
}

bool ThreadedNetwork::HasPipe(PeerId from, PeerId to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const PipeState* pipe = FindPipeLocked(from, to);
  return pipe != nullptr && pipe->open;
}

std::vector<PeerId> ThreadedNetwork::Neighbors(PeerId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PeerId> out;
  for (const auto& [key, pipe] : pipes_) {
    if (key.first == id.value && pipe.open &&
        key.second < workers_.size() && workers_[key.second]->alive) {
      out.push_back(PeerId(key.second));
    }
  }
  return out;
}

size_t ThreadedNetwork::open_pipe_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [key, pipe] : pipes_) {
    if (pipe.open) ++n;
  }
  return n / 2;
}

void ThreadedNetwork::EnqueueLocked(uint32_t peer, InboxItem item) {
  Worker& worker = *workers_[peer];
  // Keep the inbox sorted by due time (stable for ties) so a jittered
  // message lets later traffic overtake it instead of head-of-line
  // blocking the whole inbox behind its delay.
  auto pos = std::upper_bound(
      worker.inbox.begin(), worker.inbox.end(), item.due,
      [](const std::chrono::steady_clock::time_point& due,
         const InboxItem& other) { return due < other.due; });
  bool maintenance = item.maintenance;
  worker.inbox.insert(pos, std::move(item));
  if (!maintenance) ++busy_;
  profiler_.NoteQueueDepth(/*maintenance=*/false, worker.inbox.size());
  work_cv_.notify_all();
}

void ThreadedNetwork::NotifyPipeClosedLocked(PeerId peer, PeerId other) {
  if (!peer.valid() || peer.value >= workers_.size()) return;
  if (!workers_[peer.value]->alive) return;
  InboxItem item;
  item.pipe_closed = true;
  item.closed_other = other;
  item.due = std::chrono::steady_clock::now();
  item.enqueued = item.due;
  EnqueueLocked(peer.value, std::move(item));
}

Status ThreadedNetwork::Send(Message message) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!message.src.valid() || message.src.value >= workers_.size() ||
      !workers_[message.src.value]->alive) {
    return Status::Unavailable("sender " + message.src.ToString() +
                               " is not on the network");
  }
  auto it = pipes_.find(PipeKey(message.src, message.dst));
  if (it == pipes_.end() || !it->second.open) {
    return Status::Unavailable("no open pipe " + message.src.ToString() +
                               " -> " + message.dst.ToString());
  }
  if (message.dst.value >= workers_.size() ||
      !workers_[message.dst.value]->alive) {
    stats_.RecordSend(message);
    RecordCostSend(message);
    stats_.RecordDrop(message);
    return Status::Ok();  // in-flight loss semantics
  }
  stats_.RecordSend(message);
  // Ledger accounting mirrors TransportStats: send bytes are charged even
  // if the fault injector drops the message below.
  RecordCostSend(message);
  PipeState& pipe = it->second;
  FaultInjector::Decision fault = pipe.injector.Next();
  if (fault.drop) {
    // The sender cannot tell a dropped message from a delivered one.
    stats_.RecordInjectedDrop();
    return Status::Ok();
  }
  if (Tracer::Global().enabled()) {
    message.trace_id = Tracer::Global().NoteSend();
  }

  // Latency + bandwidth queueing, like the simulator but in wall time.
  int64_t now = now_us();
  auto schedule_arrival = [&pipe, now](size_t bytes) {
    int64_t start = std::max(now, pipe.busy_until_us);
    int64_t transmit =
        pipe.profile.bandwidth_bpus > 0
            ? static_cast<int64_t>(static_cast<double>(bytes) /
                                   pipe.profile.bandwidth_bpus)
            : 0;
    pipe.busy_until_us = start + transmit;
    return pipe.busy_until_us + pipe.profile.latency_us;
  };
  int64_t arrival = schedule_arrival(message.WireSize());
  if (fault.extra_delay_us > 0) {
    stats_.RecordInjectedDelay();
    arrival += fault.extra_delay_us;
  }

  uint32_t destination = message.dst.value;
  const bool maintenance = message.maintenance;
  auto enqueued_at = std::chrono::steady_clock::now();
  if (fault.duplicate) {
    stats_.RecordInjectedDup();
    // The copy rides right behind the original on the wire.
    int64_t dup_arrival = schedule_arrival(message.WireSize());
    InboxItem dup;
    dup.message = std::make_unique<Message>(message);
    dup.due = epoch_ + std::chrono::microseconds(dup_arrival);
    dup.enqueued = enqueued_at;
    dup.maintenance = maintenance;
    EnqueueLocked(destination, std::move(dup));
  }
  InboxItem item;
  item.message = std::make_unique<Message>(std::move(message));
  item.due = epoch_ + std::chrono::microseconds(arrival);
  item.enqueued = enqueued_at;
  item.maintenance = maintenance;
  EnqueueLocked(destination, std::move(item));
  return Status::Ok();
}

void ThreadedNetwork::ScheduleAt(int64_t time_us,
                                 std::function<void()> action) {
  std::lock_guard<std::mutex> lock(mutex_);
  timers_.push_back(
      {epoch_ + std::chrono::microseconds(std::max(time_us, now_us())),
       std::move(action)});
  ++busy_;
  profiler_.NoteQueueDepth(/*maintenance=*/true, timers_.size());
  work_cv_.notify_all();
}

void ThreadedNetwork::ScheduleAfter(int64_t delay_us,
                                    std::function<void()> action) {
  ScheduleAt(now_us() + delay_us, std::move(action));
}

void ThreadedNetwork::ScheduleMaintenance(int64_t delay_us,
                                          std::function<void()> action) {
  std::lock_guard<std::mutex> lock(mutex_);
  Timer timer;
  timer.due =
      epoch_ + std::chrono::microseconds(now_us() + std::max<int64_t>(
                                                        delay_us, 0));
  timer.action = std::move(action);
  timer.maintenance = true;
  // Deliberately no ++busy_: a pending maintenance timer must not hold
  // Run() open. The timer thread counts it only while it executes.
  timers_.push_back(std::move(timer));
  profiler_.NoteQueueDepth(/*maintenance=*/true, timers_.size());
  work_cv_.notify_all();
}

void ThreadedNetwork::WorkerLoop(uint32_t index) {
  std::unique_lock<std::mutex> lock(mutex_);
  Worker& worker = *workers_[index];
  for (;;) {
    if (shutdown_) return;
    if (worker.inbox.empty()) {
      work_cv_.wait(lock);
      continue;
    }
    // FIFO delivery, but not before the item's due time. Copy the due
    // time out: wait_until releases the lock, and the inbox may grow
    // (or the timers vector reallocate) while we sleep.
    auto due = worker.inbox.front().due;
    if (due > std::chrono::steady_clock::now()) {
      work_cv_.wait_until(lock, due);
      continue;
    }
    InboxItem item = std::move(worker.inbox.front());
    worker.inbox.pop_front();
    // A queued maintenance item was never counted; its handler execution
    // is, so Run() cannot return while a beacon handler is mid-flight.
    if (item.maintenance) ++busy_;

    NetworkPeer* handler = worker.alive ? worker.handler : nullptr;
    bool dropped = false;
    if (item.message != nullptr) {
      // In-flight loss: the pipe may have closed while the message waited.
      const PipeState* pipe =
          FindPipeLocked(item.message->src, item.message->dst);
      if (pipe == nullptr || !pipe->open || handler == nullptr) {
        stats_.RecordDrop(*item.message);
        dropped = true;
      }
    }
    const bool profiling = profiler_.enabled();
    CostClass cls = CostClass::kData;
    if (!dropped && handler != nullptr && item.message != nullptr) {
      // Sojourn = enqueue-to-dispatch wall time: the modelled wire delay
      // plus any real backlog behind earlier inbox items.
      if (profiling) {
        cls = ClassifyMessage(*item.message);
        profiler_.RecordSojourn(
            cls, std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - item.enqueued)
                     .count());
      }
      RecordCostRecv(*item.message);
    }
    if (!dropped && handler != nullptr) {
      // Run the handler without the lock; the peer's serialization is
      // preserved because only this thread drains this inbox.
      lock.unlock();
      std::chrono::steady_clock::time_point service_start;
      if (profiling && item.message != nullptr) {
        service_start = std::chrono::steady_clock::now();
      }
      if (item.message != nullptr) {
        Tracer& tracer = Tracer::Global();
        if (tracer.enabled()) {
          // The threaded runtime's "virtual" clock is wall microseconds
          // since the network epoch, so both axes stay meaningful.
          Tracer::SetVirtualTime(now_us());
          uint64_t span = tracer.BeginSpan(index, "net.deliver");
          tracer.AddArg(span, "type",
                        MessageTypeName(item.message->type));
          tracer.AddArg(span, "bytes",
                        std::to_string(item.message->WireSize()));
          tracer.LinkDelivery(item.message->trace_id, span);
          handler->HandleMessage(*item.message);
          Tracer::SetVirtualTime(now_us());
          tracer.EndSpan(span);
        } else {
          handler->HandleMessage(*item.message);
        }
        if (profiling) {
          profiler_.RecordService(
              cls, std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - service_start)
                       .count());
        }
      } else if (item.pipe_closed) {
        handler->HandlePipeClosed(item.closed_other);
      }
      lock.lock();
    }
    ++events_processed_;
    --busy_;
    if (busy_ == 0) quiescent_cv_.notify_all();
  }
}

void ThreadedNetwork::TimerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_) return;
    // Find the earliest due timer.
    auto earliest = timers_.end();
    for (auto it = timers_.begin(); it != timers_.end(); ++it) {
      if (earliest == timers_.end() || it->due < earliest->due) {
        earliest = it;
      }
    }
    if (earliest == timers_.end()) {
      work_cv_.wait(lock);
      continue;
    }
    // Copy the due time before sleeping: wait_until releases the lock,
    // and a concurrent ScheduleAt may reallocate timers_, leaving
    // `earliest` (and any reference into it) dangling.
    auto due = earliest->due;
    if (due > std::chrono::steady_clock::now()) {
      work_cv_.wait_until(lock, due);
      continue;
    }
    std::function<void()> action = std::move(earliest->action);
    // Pending maintenance timers are not busy_; count one only for the
    // duration of its execution (the tail --busy_ balances it).
    if (earliest->maintenance) ++busy_;
    timers_.erase(earliest);
    if (profiler_.enabled()) {
      profiler_.RecordTimerLag(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - due)
              .count());
    }
    lock.unlock();
    if (action) action();
    lock.lock();
    ++events_processed_;
    --busy_;
    if (busy_ == 0) quiescent_cv_.notify_all();
  }
}

void ThreadedNetwork::BeginExternalWork() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++busy_;
}

void ThreadedNetwork::EndExternalWork() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++events_processed_;
  --busy_;
  if (busy_ == 0) quiescent_cv_.notify_all();
}

uint64_t ThreadedNetwork::Run(uint64_t max_events) {
  (void)max_events;  // the threaded runtime has no event cap
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t before = events_processed_;
  quiescent_cv_.wait(lock, [this] { return busy_ == 0 || shutdown_; });
  return events_processed_ - before;
}

uint64_t ThreadedNetwork::RunUntil(int64_t deadline_us) {
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t before = events_processed_;
  auto deadline = epoch_ + std::chrono::microseconds(deadline_us);
  // Sleep through the window so maintenance traffic keeps firing on the
  // worker/timer threads, then drain whatever is still executing.
  while (!shutdown_ && std::chrono::steady_clock::now() < deadline) {
    quiescent_cv_.wait_until(lock, deadline);
  }
  quiescent_cv_.wait(lock, [this] { return busy_ == 0 || shutdown_; });
  return events_processed_ - before;
}

}  // namespace codb
