// Decentralized peer discovery.
//
// JXTA advertises network resources and lets peers discover them without a
// central registry. Here each peer floods a PeerAdvertisement (name +
// exported relations) to its pipe neighbours; every peer forwards each
// advertisement once, so eventually every connected peer knows every other
// — including peers it has no pipes or rules with, which is exactly what
// the paper's peer-discovery window (Figure 3) displays.

#ifndef CODB_NET_DISCOVERY_H_
#define CODB_NET_DISCOVERY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/network_interface.h"
#include "util/status.h"

namespace codb {

struct PeerAdvertisement {
  PeerId peer;
  uint64_t epoch = 0;  // bumped on each re-announce; newer wins
  std::string name;
  std::vector<std::string> exported_relations;

  std::vector<uint8_t> Serialize() const;
  static Result<PeerAdvertisement> Deserialize(
      const std::vector<uint8_t>& payload);
};

// One instance per node. The owning node routes kAdvertisement messages
// here and calls Announce when it joins or its exported schema changes.
class DiscoveryService {
 public:
  DiscoveryService(NetworkBase* network, PeerId self) : network_(network),
                                                    self_(self) {}

  // Floods this peer's advertisement to all current neighbours.
  void Announce(const std::string& name,
                std::vector<std::string> exported_relations);

  // Handles an incoming advertisement: caches it and forwards it once to
  // every neighbour except the one it came from.
  void HandleAdvertisement(const Message& message);

  // Every peer discovered so far (excluding self), by peer id.
  std::vector<PeerAdvertisement> Known() const;

  bool Knows(PeerId peer) const { return cache_.count(peer.value) > 0; }

 private:
  void Flood(const PeerAdvertisement& ad, PeerId except);

  NetworkBase* network_;
  PeerId self_;
  uint64_t epoch_ = 0;
  std::map<uint32_t, PeerAdvertisement> cache_;
  std::set<std::pair<uint32_t, uint64_t>> forwarded_;
};

}  // namespace codb

#endif  // CODB_NET_DISCOVERY_H_
