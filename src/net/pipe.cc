#include "net/pipe.h"

#include <algorithm>

#include "util/string_util.h"

namespace codb {

int64_t Pipe::ScheduleArrival(int64_t now, size_t bytes) {
  int64_t start = std::max(now, busy_until_);
  int64_t transmit_us = profile_.bandwidth_bpus > 0
                            ? static_cast<int64_t>(
                                  static_cast<double>(bytes) /
                                  profile_.bandwidth_bpus)
                            : 0;
  busy_until_ = start + transmit_us;
  return busy_until_ + profile_.latency_us;
}

void Pipe::SetFault(const FaultProfile& fault) {
  profile_.fault = fault;
  injector_ = FaultInjector(fault, from_, to_);
}

std::string Pipe::ToString() const {
  return StrFormat("pipe %s -> %s (lat=%lldus bw=%.1fB/us%s)",
                   from_.ToString().c_str(), to_.ToString().c_str(),
                   static_cast<long long>(profile_.latency_us),
                   profile_.bandwidth_bpus, open_ ? "" : ", closed");
}

}  // namespace codb
