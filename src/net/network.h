// The simulated P2P network: a deterministic discrete-event message bus.
//
// This is the stand-in for JXTA (see DESIGN.md §1). Peers join under a
// name, open pipes to other peers, and exchange messages; the simulator
// delivers each message after the pipe's latency/bandwidth cost, in a
// single virtual timeline. Everything is deterministic: the same inputs
// produce the same delivery order, message counts and byte volumes, which
// is what makes the experiment suite reproducible.
//
// Churn (dynamic networks, a design goal of the paper) is first-class:
// peers can leave, pipes can drop, and actions can be scheduled at virtual
// times to rewire the network mid-experiment. In-flight messages to a dead
// peer or across a closed pipe are dropped, like packets on a cut link.

#ifndef CODB_NET_NETWORK_H_
#define CODB_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/network_interface.h"
#include "net/peer_id.h"
#include "net/pipe.h"
#include "net/transport_stats.h"
#include "util/status.h"

namespace codb {

class Network : public NetworkBase {
 public:
  Network() = default;
  ~Network() override = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  using NetworkBase::OpenPipe;
  using NetworkBase::Run;

  // -- membership ---------------------------------------------------------

  // Joins under `name`; the peer pointer must outlive the network or be
  // removed with Leave first.
  PeerId Join(const std::string& name, NetworkPeer* peer) override;

  // Removes the peer; its pipes close and in-flight traffic to it is lost.
  Status Leave(PeerId id) override;

  bool IsAlive(PeerId id) const override;
  std::string NameOf(PeerId id) const override;
  Result<PeerId> FindByName(const std::string& name) const override;
  std::vector<PeerId> AlivePeers() const override;

  // -- pipes --------------------------------------------------------------

  // Opens both directions with the same profile. Idempotent.
  Status OpenPipe(PeerId a, PeerId b, LinkProfile profile) override;

  // Closes both directions. In-flight messages on the pipe are dropped.
  Status ClosePipe(PeerId a, PeerId b) override;

  Status SetFaultProfile(PeerId a, PeerId b,
                         const FaultProfile& fault) override;
  void SetDefaultFaultProfile(const FaultProfile& fault) override;

  bool HasPipe(PeerId from, PeerId to) const override;
  std::vector<PeerId> Neighbors(PeerId id) const override;
  size_t open_pipe_count() const override;

  // -- traffic ------------------------------------------------------------

  // Enqueues delivery of `message` over the pipe src->dst. Fails with
  // kUnavailable if the sender is dead or no open pipe exists.
  Status Send(Message message) override;

  // Schedules `action` to run at the given virtual time (or `delay` from
  // now). Used for churn scripts and node timers.
  void ScheduleAt(int64_t time_us, std::function<void()> action) override;
  void ScheduleAfter(int64_t delay_us,
                     std::function<void()> action) override;
  void ScheduleMaintenance(int64_t delay_us,
                           std::function<void()> action) override;

  // -- simulation loop ----------------------------------------------------

  int64_t now_us() const override { return now_us_; }

  // Processes the next foreground event; false if none are queued.
  // Maintenance events (heartbeat ticks and beacon traffic) stay queued —
  // see RunUntil.
  bool Step();

  // Runs until no foreground events remain or `max_events`; returns
  // events processed. Pending maintenance events do not block quiescence.
  uint64_t Run(uint64_t max_events) override;

  // Runs every event — foreground AND maintenance — due at or before
  // `deadline_us`, then advances the virtual clock to the deadline.
  uint64_t RunUntil(int64_t deadline_us) override;

  TransportStats& stats() override { return stats_; }
  const TransportStats& stats() const override { return stats_; }

 private:
  struct PeerEntry {
    std::string name;
    NetworkPeer* handler = nullptr;
    bool alive = false;
  };

  struct Event {
    int64_t time_us = 0;
    uint64_t seq = 0;  // FIFO tie-break for equal timestamps
    // Virtual time at which the event was enqueued. For messages the gap
    // to dispatch is the wire sojourn (pipe latency + bandwidth queueing),
    // which is what the queue profiler reports.
    int64_t enqueued_us = 0;
    // Exactly one of the two is set.
    std::unique_ptr<Message> message;
    std::function<void()> action;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_us != b.time_us) return a.time_us > b.time_us;
      return a.seq > b.seq;
    }
  };

  Pipe* FindPipe(PeerId from, PeerId to);
  const Pipe* FindPipe(PeerId from, PeerId to) const;
  void NotifyPipeClosed(PeerId peer, PeerId other);
  void PushEvent(Event event, bool maintenance);
  // Pops the next due event; considers the maintenance lane only when
  // `include_maintenance`. Returns false if nothing qualifies.
  bool PopNext(bool include_maintenance, Event* out);
  void Dispatch(const Event& event);

  std::vector<PeerEntry> peers_;
  std::map<std::pair<uint32_t, uint32_t>, Pipe> pipes_;
  // Open-pipe adjacency (both directions), so Neighbors() is O(degree)
  // rather than a scan of every pipe — the difference between beacon
  // ticks costing O(E) and O(n·E) per period at thousand-peer scale.
  std::vector<std::set<uint32_t>> adjacency_;
  FaultProfile default_fault_;
  // priority_queue does not allow moving out of top(); use mutable heaps.
  // Foreground and maintenance events live in separate lanes sharing one
  // seq counter, so a merged pop is still globally FIFO at equal times.
  std::vector<Event> events_;
  std::vector<Event> maintenance_events_;
  uint64_t next_seq_ = 0;
  int64_t now_us_ = 0;
  TransportStats stats_;
};

}  // namespace codb

#endif  // CODB_NET_NETWORK_H_
