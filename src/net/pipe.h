// Pipes: point-to-point communication links between peers.
//
// As in JXTA, peers communicate over explicitly created pipes; coDB nodes
// create a pipe to every node they have coordination rules with, several
// rules can share one pipe, and a pipe that loses its last rule is closed
// (paper, section 3). The pipe carries the cost model of the simulated
// link: a propagation latency plus a serialization delay (bytes/bandwidth)
// with FIFO ordering per direction.

#ifndef CODB_NET_PIPE_H_
#define CODB_NET_PIPE_H_

#include <cstdint>
#include <string>

#include "net/fault.h"
#include "net/peer_id.h"

namespace codb {

// Link cost parameters. Times are in virtual microseconds; bandwidth in
// bytes per virtual microsecond (i.e. MB/s). The fault profile defaults
// to faultless; see net/fault.h.
struct LinkProfile {
  int64_t latency_us = 1000;     // one-way propagation delay
  double bandwidth_bpus = 10.0;  // serialization rate
  FaultProfile fault;

  static LinkProfile Lan() { return {/*latency*/ 200, /*bw*/ 100.0, {}}; }
  static LinkProfile Wan() { return {/*latency*/ 20000, /*bw*/ 1.0, {}}; }
};

// One direction of a pipe between two peers.
class Pipe {
 public:
  Pipe(PeerId from, PeerId to, LinkProfile profile)
      : from_(from),
        to_(to),
        profile_(profile),
        injector_(profile.fault, from, to) {}

  PeerId from() const { return from_; }
  PeerId to() const { return to_; }
  const LinkProfile& profile() const { return profile_; }

  bool open() const { return open_; }
  void Close() { open_ = false; }

  // Computes the arrival time of a message of `bytes` sent at `now`,
  // modelling FIFO serialization: transmission starts when the link is
  // free, takes bytes/bandwidth, then the latency elapses in flight.
  int64_t ScheduleArrival(int64_t now, size_t bytes);

  // Replaces the fault profile and restarts its deterministic sequence
  // (used by churn scripts to start/heal partitions mid-run).
  void SetFault(const FaultProfile& fault);
  const FaultProfile& fault() const { return profile_.fault; }

  // Advances the injector by one message.
  FaultInjector::Decision NextFault() { return injector_.Next(); }

  std::string ToString() const;

 private:
  PeerId from_;
  PeerId to_;
  LinkProfile profile_;
  bool open_ = true;
  int64_t busy_until_ = 0;
  FaultInjector injector_;
};

}  // namespace codb

#endif  // CODB_NET_PIPE_H_
