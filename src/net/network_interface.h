// The network abstraction the coDB layers are written against.
//
// Two implementations exist:
//   * Network (net/network.h) — the deterministic discrete-event simulator
//     used by tests, benches and examples (virtual clock, reproducible);
//   * ThreadedNetwork (net/threaded_network.h) — a real concurrent runtime
//     with one delivery thread per peer and wall-clock time, demonstrating
//     that the protocols do not depend on simulator determinism.
//
// Threading contract: each peer's messages are delivered sequentially (a
// peer never handles two messages concurrently), distinct peers run
// concurrently, and peer-facing API calls (starting updates/queries,
// seeding data) must happen while the network is quiescent — i.e. before
// traffic starts or after Run()/a quiescence wait returns. The simulator
// satisfies this trivially.

#ifndef CODB_NET_NETWORK_INTERFACE_H_
#define CODB_NET_NETWORK_INTERFACE_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "net/message.h"
#include "net/peer_id.h"
#include "net/pipe.h"
#include "net/transport_stats.h"
#include "obs/cost_ledger.h"
#include "obs/queue_profiler.h"
#include "util/status.h"

namespace codb {

// Implemented by anything that lives on the network (core::Node, the
// super-peer, test fixtures). See the threading contract above.
class NetworkPeer {
 public:
  virtual ~NetworkPeer() = default;
  virtual void HandleMessage(const Message& message) = 0;

  // Notification that the pipe to `other` is gone (explicit close or peer
  // death) — the moral equivalent of a JXTA pipe-closed event. In-flight
  // traffic on the pipe is lost. Delivered on the peer's handler context.
  virtual void HandlePipeClosed(PeerId other) { (void)other; }
};

class NetworkBase {
 public:
  virtual ~NetworkBase() = default;

  // -- membership ---------------------------------------------------------
  virtual PeerId Join(const std::string& name, NetworkPeer* peer) = 0;
  virtual Status Leave(PeerId id) = 0;
  virtual bool IsAlive(PeerId id) const = 0;
  virtual std::string NameOf(PeerId id) const = 0;
  virtual Result<PeerId> FindByName(const std::string& name) const = 0;
  virtual std::vector<PeerId> AlivePeers() const = 0;

  // -- pipes ----------------------------------------------------------------
  virtual Status OpenPipe(PeerId a, PeerId b, LinkProfile profile) = 0;
  Status OpenPipe(PeerId a, PeerId b) {
    return OpenPipe(a, b, LinkProfile());
  }
  virtual Status ClosePipe(PeerId a, PeerId b) = 0;

  // Replaces the fault profile on both directions of the a<->b pipe and
  // restarts its deterministic sequence. Used by torture tests and churn
  // scripts (including partitions: FaultProfile::Partition() is 100% loss
  // with no pipe-closed notification).
  virtual Status SetFaultProfile(PeerId a, PeerId b,
                                 const FaultProfile& fault) = 0;
  // Applies `fault` to every currently open pipe direction and to pipes
  // opened later without an explicit profile override.
  virtual void SetDefaultFaultProfile(const FaultProfile& fault) = 0;

  virtual bool HasPipe(PeerId from, PeerId to) const = 0;
  virtual std::vector<PeerId> Neighbors(PeerId id) const = 0;
  virtual size_t open_pipe_count() const = 0;

  // -- traffic ----------------------------------------------------------------
  virtual Status Send(Message message) = 0;
  virtual void ScheduleAt(int64_t time_us, std::function<void()> action) = 0;
  virtual void ScheduleAfter(int64_t delay_us,
                             std::function<void()> action) = 0;

  // Schedules a *maintenance* timer: like ScheduleAfter, but a pending
  // maintenance action does not keep Run() from declaring quiescence —
  // it stays queued, unexecuted, until a later Run()/RunUntil() reaches
  // its due time. This is what lets a heartbeat session re-arm itself
  // every period without turning Run() into an infinite loop. Messages
  // sent with `Message::maintenance` set get the same treatment.
  virtual void ScheduleMaintenance(int64_t delay_us,
                                   std::function<void()> action) {
    ScheduleAfter(delay_us, action);
  }

  // Current time in microseconds: virtual for the simulator, wall-clock
  // since construction for the threaded runtime.
  virtual int64_t now_us() const = 0;

  // Drives the network until quiescent (no queued traffic, no running
  // handlers, no due timers) or `max_events`; returns events processed.
  // The simulator executes events inline; the threaded runtime blocks the
  // caller until the workers drain.
  virtual uint64_t Run(uint64_t max_events) = 0;
  uint64_t Run() { return Run(kDefaultEventCap); }

  // Drives the network — INCLUDING maintenance events — until the clock
  // reaches `deadline_us` (absolute, same scale as now_us()). On the
  // simulator the virtual clock jumps from event to event and lands on
  // the deadline; on the threaded runtime this blocks the caller for the
  // corresponding wall time. Returns events processed. This is how
  // membership tests and churn benches advance heartbeat time.
  virtual uint64_t RunUntil(int64_t deadline_us) = 0;
  uint64_t RunFor(int64_t duration_us) {
    return RunUntil(now_us() + duration_us);
  }

  // -- background work ------------------------------------------------------
  // A peer that hands message processing to its own executor (concurrent
  // flow admission, see core::Node) must keep the network's quiescence
  // accounting honest: bracket each off-thread unit of work with
  // BeginExternalWork / EndExternalWork so Run() does not return while
  // flow handlers are still running on a node's pool. Peers must only do
  // this when SupportsBackgroundWork() is true — the discrete-event
  // simulator runs everything inline and has no notion of work it did
  // not schedule itself.
  virtual bool SupportsBackgroundWork() const { return false; }
  virtual void BeginExternalWork() {}
  virtual void EndExternalWork() {}

  virtual TransportStats& stats() = 0;
  virtual const TransportStats& stats() const = 0;

  // -- observability (DESIGN.md §12) ---------------------------------------
  // Cost ledgers are attach-based and off by default: until one is
  // attached, every dispatch pays one relaxed atomic load + branch and
  // nothing else. Attach while the network is quiescent (setup time) —
  // the ledger table itself is not guarded.
  //
  // Per-peer ledger: the runtime records the send side of every message
  // whose src is `id` and the receive side of every delivery to `id`.
  // Nodes attach their statistical module's ledger here so the per-class
  // byte breakdown rides the kStatsReport trailer.
  void AttachCostLedger(PeerId id, CostLedger* ledger) {
    if (!id.valid()) return;
    if (ledgers_.size() <= id.value) ledgers_.resize(id.value + 1, nullptr);
    ledgers_[id.value] = ledger;
    cost_enabled_.store(true, std::memory_order_release);
  }

  // Network-wide ledger: every send/delivery is recorded regardless of
  // endpoint. Benches use this for exact totals without a collection.
  void SetGlobalCostLedger(CostLedger* ledger) {
    global_ledger_ = ledger;
    if (ledger != nullptr) {
      cost_enabled_.store(true, std::memory_order_release);
    }
  }
  CostLedger* global_cost_ledger() const { return global_ledger_; }

  // The event-loop profiler; call profiler().Enable() to turn it on.
  QueueProfiler& profiler() { return profiler_; }
  const QueueProfiler& profiler() const { return profiler_; }

  static constexpr uint64_t kDefaultEventCap = 50'000'000;

 protected:
  bool CostEnabled() const {
    return cost_enabled_.load(std::memory_order_acquire);
  }
  void RecordCostSend(const Message& message) {
    if (!CostEnabled()) return;
    if (global_ledger_ != nullptr) global_ledger_->RecordSend(message);
    if (message.src.value < ledgers_.size() &&
        ledgers_[message.src.value] != nullptr) {
      ledgers_[message.src.value]->RecordSend(message);
    }
  }
  void RecordCostRecv(const Message& message) {
    if (!CostEnabled()) return;
    if (global_ledger_ != nullptr) global_ledger_->RecordRecv(message);
    if (message.dst.value < ledgers_.size() &&
        ledgers_[message.dst.value] != nullptr) {
      ledgers_[message.dst.value]->RecordRecv(message);
    }
  }

  QueueProfiler profiler_;

 private:
  std::vector<CostLedger*> ledgers_;
  CostLedger* global_ledger_ = nullptr;
  std::atomic<bool> cost_enabled_{false};
};

}  // namespace codb

#endif  // CODB_NET_NETWORK_INTERFACE_H_
