// Deterministic per-pipe fault injection.
//
// Real P2P substrates drop, duplicate, delay and reorder traffic; the
// paper's JXTA layer hides none of that from a robust protocol. Both
// network runtimes consult a FaultInjector on every send: the injector
// draws a fixed number of variates from a pipe-local PRNG seeded from
// (profile seed, endpoints), so the fault sequence on a pipe depends only
// on the profile and the per-pipe send order — the simulator and the
// threaded runtime inject identical faults for identical traffic, and a
// given seed reproduces a torture run exactly.

#ifndef CODB_NET_FAULT_H_
#define CODB_NET_FAULT_H_

#include <cstdint>

#include "net/peer_id.h"
#include "util/random.h"

namespace codb {

// Per-pipe fault model. Probabilities are per message; `jitter_us` is the
// maximum extra in-flight delay added when a reorder fires (messages
// behind it on the pipe can overtake it). All-zero = faultless (the
// default), so existing pipes behave exactly as before.
struct FaultProfile {
  double drop_rate = 0.0;       // message silently lost
  double duplicate_rate = 0.0;  // message delivered twice
  double reorder_rate = 0.0;    // message delayed by up to jitter_us
  int64_t jitter_us = 0;        // max extra delay for a reordered message
  uint64_t seed = 0;            // torture-run reproducibility

  bool Active() const {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0;
  }

  static FaultProfile Drop(double rate, uint64_t seed) {
    FaultProfile p;
    p.drop_rate = rate;
    p.seed = seed;
    return p;
  }
  static FaultProfile Duplicate(double rate, uint64_t seed) {
    FaultProfile p;
    p.duplicate_rate = rate;
    p.seed = seed;
    return p;
  }
  static FaultProfile Reorder(double rate, int64_t jitter_us, uint64_t seed) {
    FaultProfile p;
    p.reorder_rate = rate;
    p.jitter_us = jitter_us;
    p.seed = seed;
    return p;
  }
  // A partition is 100% loss without a pipe-closed notification: peers
  // cannot tell a partitioned link from a slow one.
  static FaultProfile Partition() {
    FaultProfile p;
    p.drop_rate = 1.0;
    return p;
  }
};

// One injector per pipe direction; Next() advances the deterministic
// sequence by exactly one step per sent message.
class FaultInjector {
 public:
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    int64_t extra_delay_us = 0;  // applied after FIFO serialization
  };

  FaultInjector() : FaultInjector(FaultProfile(), PeerId(), PeerId()) {}
  FaultInjector(const FaultProfile& profile, PeerId from, PeerId to);

  // Draws a fixed number of variates regardless of the outcome, so the
  // decision for message k depends only on (profile, endpoints, k).
  Decision Next();

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultProfile profile_;
  Rng rng_;
};

}  // namespace codb

#endif  // CODB_NET_FAULT_H_
