#include "net/discovery.h"

#include "relation/wire.h"
#include "util/logging.h"

namespace codb {

std::vector<uint8_t> PeerAdvertisement::Serialize() const {
  WireWriter writer;
  writer.WriteU32(peer.value);
  writer.WriteU64(epoch);
  writer.WriteString(name);
  writer.WriteStringList(exported_relations);
  return writer.Take();
}

Result<PeerAdvertisement> PeerAdvertisement::Deserialize(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  PeerAdvertisement ad;
  CODB_ASSIGN_OR_RETURN(uint32_t peer, reader.ReadU32());
  ad.peer = PeerId(peer);
  CODB_ASSIGN_OR_RETURN(ad.epoch, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(ad.name, reader.ReadString());
  CODB_ASSIGN_OR_RETURN(ad.exported_relations, reader.ReadStringList());
  return ad;
}

void DiscoveryService::Announce(
    const std::string& name, std::vector<std::string> exported_relations) {
  PeerAdvertisement ad;
  ad.peer = self_;
  ad.epoch = ++epoch_;
  ad.name = name;
  ad.exported_relations = std::move(exported_relations);
  forwarded_.insert({ad.peer.value, ad.epoch});
  Flood(ad, /*except=*/self_);
}

void DiscoveryService::HandleAdvertisement(const Message& message) {
  Result<PeerAdvertisement> parsed =
      PeerAdvertisement::Deserialize(message.payload);
  if (!parsed.ok()) {
    CODB_LOG(kWarning) << "discovery: dropping malformed advertisement: "
                       << parsed.status().ToString();
    return;
  }
  PeerAdvertisement ad = std::move(parsed).value();
  if (ad.peer == self_) return;

  auto it = cache_.find(ad.peer.value);
  if (it == cache_.end() || it->second.epoch < ad.epoch) {
    cache_[ad.peer.value] = ad;
  }
  // Forward each (origin, epoch) once so floods terminate.
  if (forwarded_.insert({ad.peer.value, ad.epoch}).second) {
    Flood(ad, /*except=*/message.src);
  }
}

std::vector<PeerAdvertisement> DiscoveryService::Known() const {
  std::vector<PeerAdvertisement> out;
  out.reserve(cache_.size());
  for (const auto& [id, ad] : cache_) out.push_back(ad);
  return out;
}

void DiscoveryService::Flood(const PeerAdvertisement& ad, PeerId except) {
  for (PeerId neighbor : network_->Neighbors(self_)) {
    if (neighbor == except) continue;
    Message message;
    message.src = self_;
    message.dst = neighbor;
    message.type = MessageType::kAdvertisement;
    message.payload = ad.Serialize();
    // Best effort; a racing pipe close is not an error for discovery.
    network_->Send(std::move(message));
  }
}

}  // namespace codb
