#include "net/fault.h"

namespace codb {

namespace {

// Distinct pipes under the same profile seed must see independent fault
// sequences, so the endpoints are folded into the PRNG seed with the
// usual multiply-xor mixer.
uint64_t MixSeed(uint64_t seed, PeerId from, PeerId to) {
  uint64_t x = seed ^ 0x6a09e667f3bcc909ULL;
  x ^= (static_cast<uint64_t>(from.value) << 32) | to.value;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

FaultInjector::FaultInjector(const FaultProfile& profile, PeerId from,
                             PeerId to)
    : profile_(profile), rng_(MixSeed(profile.seed, from, to)) {}

FaultInjector::Decision FaultInjector::Next() {
  // Always four draws per message: the decision for message k must not
  // depend on the outcomes of messages before it.
  double drop = rng_.UniformDouble();
  double duplicate = rng_.UniformDouble();
  double reorder = rng_.UniformDouble();
  uint64_t jitter = rng_.Next();

  Decision decision;
  if (!profile_.Active()) return decision;
  if (drop < profile_.drop_rate) {
    decision.drop = true;
    return decision;
  }
  decision.duplicate = duplicate < profile_.duplicate_rate;
  if (reorder < profile_.reorder_rate && profile_.jitter_us > 0) {
    decision.extra_delay_us = static_cast<int64_t>(
        jitter % static_cast<uint64_t>(profile_.jitter_us)) + 1;
  }
  return decision;
}

}  // namespace codb
