#include "net/transport_stats.h"

#include "util/string_util.h"

namespace codb {

void TransportStats::RecordSend(const Message& message) {
  ++total_messages_;
  total_bytes_ += message.WireSize();
  TypeCounters& c = per_type_[message.type];
  ++c.messages;
  c.bytes += message.WireSize();
}

void TransportStats::RecordDrop(const Message& message) {
  (void)message;
  ++dropped_messages_;
}

uint64_t TransportStats::MessagesOfType(MessageType type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.messages;
}

uint64_t TransportStats::BytesOfType(MessageType type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second.bytes;
}

void TransportStats::Reset() {
  total_messages_ = 0;
  total_bytes_ = 0;
  dropped_messages_ = 0;
  injected_drops_ = 0;
  injected_dups_ = 0;
  injected_delays_ = 0;
  per_type_.clear();
}

MetricsSnapshot TransportStats::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.SetCounter("net.messages", total_messages_);
  snapshot.SetCounter("net.bytes", total_bytes_);
  snapshot.SetCounter("net.dropped", dropped_messages_);
  snapshot.SetCounter("net.fault.drops", injected_drops_);
  snapshot.SetCounter("net.fault.dups", injected_dups_);
  snapshot.SetCounter("net.fault.delays", injected_delays_);
  for (const auto& [type, counters] : per_type_) {
    snapshot.SetCounter(std::string("net.msgs.") + MessageTypeName(type),
                        counters.messages);
    snapshot.SetCounter(std::string("net.bytes.") + MessageTypeName(type),
                        counters.bytes);
  }
  return snapshot;
}

std::string TransportStats::Report() const {
  std::string out = StrFormat(
      "transport: %llu messages, %s total, %llu dropped\n",
      static_cast<unsigned long long>(total_messages_),
      HumanBytes(total_bytes_).c_str(),
      static_cast<unsigned long long>(dropped_messages_));
  out += Snapshot().Render();
  return out;
}

}  // namespace codb
