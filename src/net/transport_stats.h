// Transport-level counters: messages and bytes per message type and per
// pipe. These feed the statistics the paper's demo collects ("number of
// query result messages received per coordination rule and the volume of
// the data in each message").

#ifndef CODB_NET_TRANSPORT_STATS_H_
#define CODB_NET_TRANSPORT_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "net/message.h"
#include "obs/metrics.h"

namespace codb {

class TransportStats {
 public:
  void RecordSend(const Message& message);
  void RecordDrop(const Message& message);

  // Injected faults (net/fault.h). Distinct from RecordDrop, which counts
  // messages lost to dead peers / closed pipes.
  void RecordInjectedDrop() { ++injected_drops_; }
  void RecordInjectedDup() { ++injected_dups_; }
  void RecordInjectedDelay() { ++injected_delays_; }

  uint64_t total_messages() const { return total_messages_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t dropped_messages() const { return dropped_messages_; }
  uint64_t injected_drops() const { return injected_drops_; }
  uint64_t injected_dups() const { return injected_dups_; }
  uint64_t injected_delays() const { return injected_delays_; }

  uint64_t MessagesOfType(MessageType type) const;
  uint64_t BytesOfType(MessageType type) const;

  void Reset();

  // Uniform snapshot: net.messages / net.bytes / net.dropped plus
  // net.msgs.<TYPE> and net.bytes.<TYPE> per message type seen.
  MetricsSnapshot Snapshot() const;

  // Multi-line per-type breakdown, rendered from Snapshot() so the human
  // and machine-readable views cannot drift.
  std::string Report() const;

 private:
  struct TypeCounters {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  uint64_t total_messages_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t dropped_messages_ = 0;
  uint64_t injected_drops_ = 0;
  uint64_t injected_dups_ = 0;
  uint64_t injected_delays_ = 0;
  std::map<MessageType, TypeCounters> per_type_;
};

}  // namespace codb

#endif  // CODB_NET_TRANSPORT_STATS_H_
