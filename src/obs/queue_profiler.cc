#include "obs/queue_profiler.h"

#include "util/string_util.h"

namespace codb {

void QueueProfiler::Enable() {
  if (enabled()) return;
  for (size_t c = 0; c < kCostClassCount; ++c) {
    const char* name = CostClassName(static_cast<CostClass>(c));
    sojourn_[c] =
        registry_.GetHistogram(StrFormat("queue.sojourn_us.%s", name));
    service_[c] =
        registry_.GetHistogram(StrFormat("queue.service_us.%s", name));
  }
  timer_lag_ = registry_.GetHistogram("queue.timer_lag_us");
  depth_fg_ = registry_.GetGauge("queue.depth.fg");
  depth_maint_ = registry_.GetGauge("queue.depth.maint");
  enabled_.store(true, std::memory_order_release);
}

void QueueProfiler::RecordSojourn(CostClass cls, int64_t us) {
  if (!enabled()) return;
  sojourn_[static_cast<size_t>(cls)]->Record(
      us < 0 ? 0 : static_cast<uint64_t>(us));
}

void QueueProfiler::RecordService(CostClass cls, int64_t us) {
  if (!enabled()) return;
  service_[static_cast<size_t>(cls)]->Record(
      us < 0 ? 0 : static_cast<uint64_t>(us));
}

void QueueProfiler::RecordTimerLag(int64_t us) {
  if (!enabled()) return;
  timer_lag_->Record(us < 0 ? 0 : static_cast<uint64_t>(us));
}

void QueueProfiler::NoteQueueDepth(bool maintenance, size_t depth) {
  if (!enabled()) return;
  std::atomic<int64_t>& mark = maintenance ? maint_watermark_ : fg_watermark_;
  int64_t d = static_cast<int64_t>(depth);
  int64_t seen = mark.load(std::memory_order_relaxed);
  while (d > seen &&
         !mark.compare_exchange_weak(seen, d, std::memory_order_relaxed)) {
  }
  if (d >= seen) {
    (maintenance ? depth_maint_ : depth_fg_)->Set(d);
  }
}

MetricsSnapshot QueueProfiler::Snapshot() const {
  if (!enabled()) return MetricsSnapshot();
  return registry_.Snapshot();
}

}  // namespace codb
