#include "obs/cost_ledger.h"

#include "util/string_util.h"

namespace codb {

const char* CostClassName(CostClass cls) {
  switch (cls) {
    case CostClass::kData:
      return "data";
    case CostClass::kControl:
      return "control";
    case CostClass::kAck:
      return "ack";
    case CostClass::kRetransmit:
      return "retx";
    case CostClass::kDiscovery:
      return "discovery";
    case CostClass::kConfig:
      return "config";
    case CostClass::kMembership:
      return "membership";
    case CostClass::kFederation:
      return "federation";
  }
  return "unknown";
}

CostClass ClassifyMessage(MessageType type, bool retransmit) {
  if (retransmit) return CostClass::kRetransmit;
  switch (type) {
    case MessageType::kUpdateRequest:
    case MessageType::kUpdateData:
    case MessageType::kQueryRequest:
    case MessageType::kQueryResult:
      return CostClass::kData;
    case MessageType::kLinkClosed:
    case MessageType::kUpdateComplete:
    case MessageType::kQueryDone:
    case MessageType::kStatsRequest:
    case MessageType::kStatsReport:
      return CostClass::kControl;
    case MessageType::kUpdateAck:
    case MessageType::kDeliveryAck:
      return CostClass::kAck;
    case MessageType::kAdvertisement:
      return CostClass::kDiscovery;
    case MessageType::kConfigBroadcast:
    case MessageType::kConfigSlice:
    case MessageType::kConfigDelta:
    case MessageType::kConfigFetch:
    case MessageType::kConfigAck:
      return CostClass::kConfig;
    case MessageType::kHeartbeat:
    case MessageType::kHeartbeatAck:
      return CostClass::kMembership;
    case MessageType::kFederationReport:
      return CostClass::kFederation;
  }
  return CostClass::kControl;
}

void CostLedger::RecordSend(const Message& message) {
  const size_t cls = static_cast<size_t>(ClassifyMessage(message));
  const uint64_t bytes = message.WireSize();
  sent_[cls].messages.fetch_add(1, std::memory_order_relaxed);
  sent_[cls].bytes.fetch_add(bytes, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(pair_mutex_);
  Totals& pair = pairs_[{message.src.value, message.dst.value}][cls];
  ++pair.messages;
  pair.bytes += bytes;
}

void CostLedger::RecordRecv(const Message& message) {
  const size_t cls = static_cast<size_t>(ClassifyMessage(message));
  recv_[cls].messages.fetch_add(1, std::memory_order_relaxed);
  recv_[cls].bytes.fetch_add(message.WireSize(),
                             std::memory_order_relaxed);
}

CostLedger::Totals CostLedger::Sent(CostClass cls) const {
  const Cell& cell = sent_[static_cast<size_t>(cls)];
  return {cell.messages.load(std::memory_order_relaxed),
          cell.bytes.load(std::memory_order_relaxed)};
}

CostLedger::Totals CostLedger::Received(CostClass cls) const {
  const Cell& cell = recv_[static_cast<size_t>(cls)];
  return {cell.messages.load(std::memory_order_relaxed),
          cell.bytes.load(std::memory_order_relaxed)};
}

uint64_t CostLedger::TotalSentBytes() const {
  uint64_t total = 0;
  for (const Cell& cell : sent_) {
    total += cell.bytes.load(std::memory_order_relaxed);
  }
  return total;
}

CostLedger::Totals CostLedger::PairSent(uint32_t src, uint32_t dst,
                                        CostClass cls) const {
  std::lock_guard<std::mutex> lock(pair_mutex_);
  auto it = pairs_.find({src, dst});
  if (it == pairs_.end()) return {};
  return it->second[static_cast<size_t>(cls)];
}

bool CostLedger::empty() const {
  for (size_t c = 0; c < kCostClassCount; ++c) {
    if (sent_[c].messages.load(std::memory_order_relaxed) != 0) return false;
    if (recv_[c].messages.load(std::memory_order_relaxed) != 0) return false;
  }
  return true;
}

MetricsSnapshot CostLedger::Snapshot() const {
  MetricsSnapshot snapshot;
  for (size_t c = 0; c < kCostClassCount; ++c) {
    const char* name = CostClassName(static_cast<CostClass>(c));
    Totals sent = Sent(static_cast<CostClass>(c));
    if (sent.messages != 0) {
      snapshot.SetCounter(StrFormat("cost.sent.%s.msgs", name),
                          sent.messages);
      snapshot.SetCounter(StrFormat("cost.sent.%s.bytes", name), sent.bytes);
    }
    Totals recv = Received(static_cast<CostClass>(c));
    if (recv.messages != 0) {
      snapshot.SetCounter(StrFormat("cost.recv.%s.msgs", name),
                          recv.messages);
      snapshot.SetCounter(StrFormat("cost.recv.%s.bytes", name), recv.bytes);
    }
  }
  return snapshot;
}

std::string RenderCostBreakdown(const MetricsSnapshot& snapshot,
                                const std::string& indent) {
  // Pull the cost.* counters back out of the merged snapshot; a class
  // appears if either direction saw traffic anywhere in the merge.
  struct Row {
    uint64_t sent_msgs = 0, sent_bytes = 0;
    uint64_t recv_msgs = 0, recv_bytes = 0;
  };
  std::array<Row, kCostClassCount> rows{};
  uint64_t total_sent = 0;
  bool any = false;
  auto read = [&snapshot](const std::string& name) -> uint64_t {
    auto it = snapshot.entries.find(name);
    return it == snapshot.entries.end()
               ? 0
               : static_cast<uint64_t>(it->second.value);
  };
  for (size_t c = 0; c < kCostClassCount; ++c) {
    const char* name = CostClassName(static_cast<CostClass>(c));
    Row& row = rows[c];
    row.sent_msgs = read(StrFormat("cost.sent.%s.msgs", name));
    row.sent_bytes = read(StrFormat("cost.sent.%s.bytes", name));
    row.recv_msgs = read(StrFormat("cost.recv.%s.msgs", name));
    row.recv_bytes = read(StrFormat("cost.recv.%s.bytes", name));
    total_sent += row.sent_bytes;
    if (row.sent_msgs != 0 || row.recv_msgs != 0) any = true;
  }
  if (!any) return "";

  std::string out = StrFormat(
      "%s%-12s %10s %14s %10s %14s %7s\n", indent.c_str(), "class",
      "sent-msgs", "sent-bytes", "recv-msgs", "recv-bytes", "%bytes");
  for (size_t c = 0; c < kCostClassCount; ++c) {
    const Row& row = rows[c];
    if (row.sent_msgs == 0 && row.recv_msgs == 0) continue;
    double pct = total_sent == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(row.sent_bytes) /
                           static_cast<double>(total_sent);
    out += StrFormat("%s%-12s %10llu %14llu %10llu %14llu %6.1f%%\n",
                     indent.c_str(),
                     CostClassName(static_cast<CostClass>(c)),
                     static_cast<unsigned long long>(row.sent_msgs),
                     static_cast<unsigned long long>(row.sent_bytes),
                     static_cast<unsigned long long>(row.recv_msgs),
                     static_cast<unsigned long long>(row.recv_bytes), pct);
  }
  out += StrFormat("%s%-12s %10s %14llu\n", indent.c_str(), "total", "",
                   static_cast<unsigned long long>(total_sent));
  return out;
}

}  // namespace codb
