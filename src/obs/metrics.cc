#include "obs/metrics.h"

#include <algorithm>

#include "util/string_util.h"

namespace codb {

namespace {

// A peer running a wider histogram span than ours can report bucket
// indexes past our range; folding them into the overflow bucket keeps the
// count mass (instead of silently inventing buckets whose lower bound
// HistogramBucketLow would compute with an undefined shift).
uint32_t ClampBucketIndex(uint32_t index) {
  return index < kHistogramBuckets
             ? index
             : static_cast<uint32_t>(kHistogramBuckets - 1);
}

}  // namespace

void MetricValue::Merge(const MetricValue& other) {
  // Counters and histogram counts add across nodes; gauges are
  // point-in-time readings, so the merged view keeps the worst (max).
  if (kind == MetricKind::kGauge) {
    value = std::max(value, other.value);
  } else {
    value += other.value;
  }
  sum += other.sum;
  if (other.buckets.empty()) return;
  // Merge by clamped index so snapshots with different bucket spans sum
  // their underflow/overflow mass instead of carrying out-of-range
  // indexes into the quantile math.
  std::map<uint32_t, uint64_t> merged;
  for (const auto& [index, count] : buckets) {
    merged[ClampBucketIndex(index)] += count;
  }
  for (const auto& [index, count] : other.buckets) {
    merged[ClampBucketIndex(index)] += count;
  }
  buckets.assign(merged.begin(), merged.end());
}

void MetricsSnapshot::SetCounter(const std::string& name, uint64_t value) {
  MetricValue& entry = entries[name];
  entry.kind = MetricKind::kCounter;
  entry.value = static_cast<int64_t>(value);
}

void MetricsSnapshot::SetGauge(const std::string& name, int64_t value) {
  MetricValue& entry = entries[name];
  entry.kind = MetricKind::kGauge;
  entry.value = value;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.entries) {
    auto [it, inserted] = entries.emplace(name, value);
    if (!inserted) it->second.Merge(value);
  }
}

void MetricsSnapshot::SerializeTo(WireWriter& writer) const {
  writer.WriteU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [name, entry] : entries) {
    writer.WriteString(name);
    writer.WriteU8(static_cast<uint8_t>(entry.kind));
    writer.WriteI64(entry.value);
    writer.WriteU64(entry.sum);
    writer.WriteU32(static_cast<uint32_t>(entry.buckets.size()));
    for (const auto& [index, count] : entry.buckets) {
      writer.WriteU32(index);
      writer.WriteU64(count);
    }
  }
}

Result<MetricsSnapshot> MetricsSnapshot::DeserializeFrom(WireReader& reader) {
  MetricsSnapshot snapshot;
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    MetricValue entry;
    CODB_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
    if (kind > static_cast<uint8_t>(MetricKind::kHistogram)) {
      return Status::ParseError("metrics: unknown metric kind");
    }
    entry.kind = static_cast<MetricKind>(kind);
    CODB_ASSIGN_OR_RETURN(entry.value, reader.ReadI64());
    CODB_ASSIGN_OR_RETURN(entry.sum, reader.ReadU64());
    CODB_ASSIGN_OR_RETURN(uint32_t buckets, reader.ReadU32());
    if (buckets > kHistogramBuckets) {
      return Status::ParseError("metrics: too many histogram buckets");
    }
    entry.buckets.reserve(buckets);
    for (uint32_t b = 0; b < buckets; ++b) {
      CODB_ASSIGN_OR_RETURN(uint32_t index, reader.ReadU32());
      CODB_ASSIGN_OR_RETURN(uint64_t bucket_count, reader.ReadU64());
      // A wider-span peer's out-of-range indexes fold into our overflow
      // bucket (same policy as Merge); entries arrive sorted, so equal
      // clamped indexes coalesce against the back.
      index = ClampBucketIndex(index);
      if (!entry.buckets.empty() && entry.buckets.back().first == index) {
        entry.buckets.back().second += bucket_count;
      } else {
        entry.buckets.emplace_back(index, bucket_count);
      }
    }
    snapshot.entries.emplace(std::move(name), std::move(entry));
  }
  return snapshot;
}

uint64_t MetricsSnapshot::Quantile(const MetricValue& hist, double q) {
  uint64_t total = 0;
  for (const auto& [index, count] : hist.buckets) total += count;
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (const auto& [index, count] : hist.buckets) {
    seen += count;
    if (seen > rank) return HistogramBucketLow(index);
  }
  return HistogramBucketLow(hist.buckets.back().first);
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue object = JsonValue::Object();
  for (const auto& [name, entry] : entries) {
    switch (entry.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        object.Set(name, JsonValue::Int(entry.value));
        break;
      case MetricKind::kHistogram: {
        JsonValue hist = JsonValue::Object();
        hist.Set("count", JsonValue::Int(entry.value));
        hist.Set("sum", JsonValue::Uint(entry.sum));
        if (entry.value > 0) {
          hist.Set("mean",
                   JsonValue::Number(static_cast<double>(entry.sum) /
                                     static_cast<double>(entry.value)));
          hist.Set("p50", JsonValue::Uint(Quantile(entry, 0.5)));
          hist.Set("p99", JsonValue::Uint(Quantile(entry, 0.99)));
        }
        JsonValue buckets = JsonValue::Object();
        for (const auto& [index, count] : entry.buckets) {
          buckets.Set(std::to_string(HistogramBucketLow(index)),
                      JsonValue::Uint(count));
        }
        hist.Set("buckets", std::move(buckets));
        object.Set(name, std::move(hist));
        break;
      }
    }
  }
  return object;
}

std::string MetricsSnapshot::Render(const std::string& indent) const {
  std::string out;
  for (const auto& [name, entry] : entries) {
    switch (entry.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += StrFormat("%s%-28s %12lld\n", indent.c_str(), name.c_str(),
                         static_cast<long long>(entry.value));
        break;
      case MetricKind::kHistogram:
        if (entry.value == 0) {
          out += StrFormat("%s%-28s        (empty)\n", indent.c_str(),
                           name.c_str());
        } else {
          out += StrFormat(
              "%s%-28s count %llu  mean %.1f  p50 %llu  p99 %llu\n",
              indent.c_str(), name.c_str(),
              static_cast<unsigned long long>(entry.value),
              static_cast<double>(entry.sum) /
                  static_cast<double>(entry.value),
              static_cast<unsigned long long>(Quantile(entry, 0.5)),
              static_cast<unsigned long long>(Quantile(entry, 0.99)));
        }
        break;
    }
  }
  return out;
}

MetricsRegistry::Instrument& MetricsRegistry::Register(
    const std::string& name, MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  return RegisterLocked(name, kind);
}

MetricsRegistry::Instrument& MetricsRegistry::RegisterLocked(
    const std::string& name, MetricKind kind) {
  auto it = instruments_.find(name);
  if (it != instruments_.end() && it->second.kind != kind) {
    // Name collision across kinds; keep both under distinct names rather
    // than handing back the wrong instrument type.
    static const char* suffix[] = {".counter", ".gauge", ".histogram"};
    return RegisterLocked(name + suffix[static_cast<int>(kind)], kind);
  }
  if (it == instruments_.end()) {
    Instrument instrument;
    instrument.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        instrument.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        instrument.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        instrument.histogram = std::make_unique<Histogram>();
        break;
    }
    it = instruments_.emplace(name, std::move(instrument)).first;
  }
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return Register(name, MetricKind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return Register(name, MetricKind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return Register(name, MetricKind::kHistogram).histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, instrument] : instruments_) {
    MetricValue entry;
    entry.kind = instrument.kind;
    switch (instrument.kind) {
      case MetricKind::kCounter:
        entry.value = static_cast<int64_t>(instrument.counter->value());
        break;
      case MetricKind::kGauge:
        entry.value = instrument.gauge->value();
        break;
      case MetricKind::kHistogram: {
        uint64_t total = 0;
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
          uint64_t count = instrument.histogram->BucketCount(b);
          if (count == 0) continue;
          total += count;
          entry.buckets.emplace_back(static_cast<uint32_t>(b), count);
        }
        entry.value = static_cast<int64_t>(total);
        entry.sum = instrument.histogram->sum();
        break;
      }
    }
    snapshot.entries.emplace(name, std::move(entry));
  }
  return snapshot;
}

}  // namespace codb
