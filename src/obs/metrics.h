// Unified metrics registry: named counters, gauges and log-scale
// histograms with near-zero-cost increments.
//
// Every node owns one MetricsRegistry (inside its statistical module);
// subsystems register instruments once — registration takes a mutex — and
// then increment through plain relaxed atomics on the hot path. A
// MetricsSnapshot is the uniform frozen/serializable/mergeable form every
// export path speaks: the kStatsReport trailer the super-peer aggregates,
// the human-readable text reports, and the machine-readable JSON the
// benches emit all render the SAME snapshot, so they cannot drift.
//
// Metric naming scheme (dotted, lowercase): `<subsystem>.<what>[.<detail>]`
//   net.messages, net.bytes, net.msgs.UPDATE_DATA, update.data_msgs_in,
//   query.results_in, storage.wal.records, update.handler_us (histogram).
// Histograms are log2-bucketed: bucket 0 holds the value 0, bucket i>0
// holds values in [2^(i-1), 2^i).

#ifndef CODB_OBS_METRICS_H_
#define CODB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "relation/wire.h"
#include "util/status.h"

namespace codb {

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// 0 plus one bucket per power of two up to 2^63.
inline constexpr size_t kHistogramBuckets = 65;

// Bucket index of a recorded value: 0 for 0, 1 + floor(log2(v)) otherwise.
inline size_t HistogramBucketOf(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

// Inclusive lower bound of a bucket.
inline uint64_t HistogramBucketLow(size_t bucket) {
  return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
}

class Histogram {
 public:
  void Record(uint64_t value) {
    buckets_[HistogramBucketOf(value)].fetch_add(1,
                                                 std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t BucketCount(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

// Frozen value of one metric; histograms keep only non-empty buckets.
struct MetricValue {
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;  // counter/gauge reading; histogram total count
  uint64_t sum = 0;   // histograms only
  std::vector<std::pair<uint32_t, uint64_t>> buckets;  // (index, count)

  void Merge(const MetricValue& other);
};

struct MetricsSnapshot {
  std::map<std::string, MetricValue> entries;

  bool empty() const { return entries.empty(); }

  // Convenience builders for adapting legacy counter structs.
  void SetCounter(const std::string& name, uint64_t value);
  void SetGauge(const std::string& name, int64_t value);

  // Point-wise merge: counters/gauges/histogram buckets add.
  void Merge(const MetricsSnapshot& other);

  void SerializeTo(WireWriter& writer) const;
  static Result<MetricsSnapshot> DeserializeFrom(WireReader& reader);

  // Machine-readable form: {"name": value, ...}; histograms expand into
  // an object with count/sum/mean/p50/p99/buckets.
  JsonValue ToJson() const;

  // The one human-readable formatter. Every text report that shows
  // metrics renders through here, so the human and machine paths agree.
  // `indent` is prepended to every line.
  std::string Render(const std::string& indent = "  ") const;

  // Approximate quantile (0..1) of a histogram entry from its buckets;
  // returns the lower bound of the bucket holding the quantile.
  static uint64_t Quantile(const MetricValue& hist, double q);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is idempotent and returns a stable pointer the caller
  // should cache; increments through it are lock-free. Registering an
  // existing name with a different kind returns the existing instrument
  // of the requested kind under a kind-suffixed name (never nullptr).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  struct Instrument {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument& Register(const std::string& name, MetricKind kind);
  Instrument& RegisterLocked(const std::string& name, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Instrument> instruments_;
};

}  // namespace codb

#endif  // CODB_OBS_METRICS_H_
