#include "obs/trace.h"

#include <chrono>
#include <fstream>

namespace codb {

namespace {

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct OpenFrame {
  uint64_t id = 0;
  uint32_t node = 0;
};

// Per-thread tracing context. The span stack gives nesting and the node
// context for BeginSpanHere; the virtual clock is whatever the network
// last published before handing control to this thread.
struct ThreadContext {
  std::vector<OpenFrame> stack;
  int64_t virtual_time_us = 0;
  uint32_t ordinal = 0;  // stable small id for the Chrome "tid"
};

ThreadContext& Context() {
  static std::atomic<uint32_t> next_ordinal{1};
  thread_local ThreadContext ctx = [] {
    ThreadContext fresh;
    fresh.ordinal = next_ordinal.fetch_add(1, std::memory_order_relaxed);
    return fresh;
  }();
  return ctx;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  open_.clear();
  finished_.clear();
  edges_.clear();
  pending_sends_.clear();
  node_names_.clear();
  // Thread-local stacks may still reference dropped ids; EndSpan tolerates
  // unknown ids, so stale frames drain harmlessly.
}

void Tracer::SetNodeName(uint32_t node, const std::string& name) {
  // Recorded even when disabled: peers usually join before tracing is
  // switched on, and the map is tiny.
  std::lock_guard<std::mutex> lock(mutex_);
  node_names_[node] = name;
}

void Tracer::SetVirtualTime(int64_t now_us) {
  Context().virtual_time_us = now_us;
}

uint64_t Tracer::BeginSpanInternal(uint32_t node, uint64_t parent,
                                   const std::string& name,
                                   const std::string& flow) {
  ThreadContext& ctx = Context();
  TraceSpan span;
  span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent = parent;
  span.node = node;
  span.thread = ctx.ordinal;
  span.name = name;
  span.flow = flow;
  span.start_vt_us = ctx.virtual_time_us;
  span.start_wall_ns = WallNowNs();
  uint64_t id = span.id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    open_.emplace(id, std::move(span));
  }
  ctx.stack.push_back({id, node});
  return id;
}

uint64_t Tracer::BeginSpan(uint32_t node, const std::string& name,
                           const std::string& flow) {
  if (!enabled()) return 0;
  ThreadContext& ctx = Context();
  uint64_t parent = ctx.stack.empty() ? 0 : ctx.stack.back().id;
  return BeginSpanInternal(node, parent, name, flow);
}

uint64_t Tracer::BeginSpanHere(const std::string& name,
                               const std::string& flow) {
  if (!enabled()) return 0;
  ThreadContext& ctx = Context();
  if (ctx.stack.empty()) return 0;  // no node context -> skip recording
  const OpenFrame& top = ctx.stack.back();
  return BeginSpanInternal(top.node, top.id, name, flow);
}

void Tracer::EndSpan(uint64_t id) {
  if (id == 0) return;
  ThreadContext& ctx = Context();
  // Pop this frame (and tolerate out-of-order closes by searching down).
  for (size_t i = ctx.stack.size(); i > 0; --i) {
    if (ctx.stack[i - 1].id == id) {
      ctx.stack.erase(ctx.stack.begin() + static_cast<ptrdiff_t>(i - 1));
      break;
    }
  }
  int64_t vt = ctx.virtual_time_us;
  uint64_t wall = WallNowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_.find(id);
  if (it == open_.end()) return;  // cleared mid-span or double close
  TraceSpan span = std::move(it->second);
  open_.erase(it);
  span.end_vt_us = vt < span.start_vt_us ? span.start_vt_us : vt;
  span.end_wall_ns = wall < span.start_wall_ns ? span.start_wall_ns : wall;
  finished_.push_back(std::move(span));
}

void Tracer::AddArg(uint64_t id, const std::string& key,
                    const std::string& value) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = open_.find(id);
  if (it != open_.end()) it->second.args.emplace_back(key, value);
}

void Tracer::Instant(uint32_t node, const std::string& name,
                     const std::string& flow) {
  if (!enabled()) return;
  ThreadContext& ctx = Context();
  TraceSpan span;
  span.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  span.parent = ctx.stack.empty() ? 0 : ctx.stack.back().id;
  span.node = node;
  span.thread = ctx.ordinal;
  span.name = name;
  span.flow = flow;
  span.start_vt_us = ctx.virtual_time_us;
  span.end_vt_us = span.start_vt_us;
  span.start_wall_ns = WallNowNs();
  span.end_wall_ns = span.start_wall_ns;
  span.instant = true;
  std::lock_guard<std::mutex> lock(mutex_);
  finished_.push_back(std::move(span));
}

uint64_t Tracer::NoteSend() {
  if (!enabled()) return 0;
  ThreadContext& ctx = Context();
  uint64_t from = ctx.stack.empty() ? 0 : ctx.stack.back().id;
  uint64_t correlation = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  pending_sends_[correlation] = from;
  return correlation;
}

void Tracer::LinkDelivery(uint64_t correlation, uint64_t span_id) {
  if (correlation == 0 || span_id == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto pending = pending_sends_.find(correlation);
  if (pending == pending_sends_.end()) return;
  uint64_t from = pending->second;
  pending_sends_.erase(pending);
  auto it = open_.find(span_id);
  if (it != open_.end()) {
    it->second.link_in = correlation;
    // The delivery span is a top-level event on its node; the message hop
    // is its real causal parent.
    if (it->second.parent == 0) it->second.parent = from;
  }
  edges_.push_back({correlation, from, span_id});
}

size_t Tracer::open_span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return open_.size();
}

std::vector<TraceSpan> Tracer::FinishedSpans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::vector<TraceEdge> Tracer::Edges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return edges_;
}

std::map<uint32_t, std::string> Tracer::NodeNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return node_names_;
}

namespace {

JsonValue SpanArgsJson(const TraceSpan& span) {
  JsonValue args = JsonValue::Object();
  args.Set("span", JsonValue::Uint(span.id));
  args.Set("parent", JsonValue::Uint(span.parent));
  if (!span.flow.empty()) args.Set("flow", JsonValue::Str(span.flow));
  if (span.link_in != 0) args.Set("link_in", JsonValue::Uint(span.link_in));
  args.Set("wall_ns",
           JsonValue::Uint(span.end_wall_ns - span.start_wall_ns));
  for (const auto& [key, value] : span.args) {
    args.Set(key, JsonValue::Str(value));
  }
  return args;
}

}  // namespace

JsonValue Tracer::ExportChromeTrace() const {
  std::vector<TraceSpan> spans;
  std::vector<TraceEdge> edges;
  std::map<uint32_t, std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spans = finished_;
    edges = edges_;
    names = node_names_;
  }

  JsonValue events = JsonValue::Array();
  for (const auto& [node, name] : names) {
    JsonValue meta = JsonValue::Object();
    meta.Set("ph", JsonValue::Str("M"));
    meta.Set("name", JsonValue::Str("process_name"));
    meta.Set("pid", JsonValue::Uint(node));
    meta.Set("tid", JsonValue::Uint(0));
    JsonValue args = JsonValue::Object();
    args.Set("name", JsonValue::Str(name));
    meta.Set("args", std::move(args));
    events.Push(std::move(meta));
  }

  std::map<uint64_t, const TraceSpan*> by_id;
  for (const TraceSpan& span : spans) by_id[span.id] = &span;

  for (const TraceSpan& span : spans) {
    JsonValue event = JsonValue::Object();
    event.Set("name", JsonValue::Str(span.name));
    event.Set("cat", JsonValue::Str(span.flow.empty() ? "codb" : span.flow));
    event.Set("pid", JsonValue::Uint(span.node));
    event.Set("tid", JsonValue::Uint(span.thread));
    event.Set("ts", JsonValue::Int(span.start_vt_us));
    if (span.instant) {
      event.Set("ph", JsonValue::Str("i"));
      event.Set("s", JsonValue::Str("t"));
    } else {
      event.Set("ph", JsonValue::Str("X"));
      event.Set("dur", JsonValue::Int(span.end_vt_us - span.start_vt_us));
    }
    event.Set("args", SpanArgsJson(span));
    events.Push(std::move(event));
  }

  // Message hops become flow arrows ("s" at the sender, "f" at the
  // receiver) so chrome://tracing draws the cross-node edges.
  for (const TraceEdge& edge : edges) {
    auto from = by_id.find(edge.from_span);
    auto to = by_id.find(edge.to_span);
    if (from == by_id.end() || to == by_id.end()) continue;
    JsonValue start = JsonValue::Object();
    start.Set("ph", JsonValue::Str("s"));
    start.Set("id", JsonValue::Uint(edge.correlation));
    start.Set("name", JsonValue::Str("hop"));
    start.Set("cat", JsonValue::Str("hop"));
    start.Set("pid", JsonValue::Uint(from->second->node));
    start.Set("tid", JsonValue::Uint(from->second->thread));
    start.Set("ts", JsonValue::Int(from->second->start_vt_us));
    events.Push(std::move(start));
    JsonValue finish = JsonValue::Object();
    finish.Set("ph", JsonValue::Str("f"));
    finish.Set("bp", JsonValue::Str("e"));
    finish.Set("id", JsonValue::Uint(edge.correlation));
    finish.Set("name", JsonValue::Str("hop"));
    finish.Set("cat", JsonValue::Str("hop"));
    finish.Set("pid", JsonValue::Uint(to->second->node));
    finish.Set("tid", JsonValue::Uint(to->second->thread));
    finish.Set("ts", JsonValue::Int(to->second->start_vt_us));
    events.Push(std::move(finish));
  }

  JsonValue document = JsonValue::Object();
  document.Set("traceEvents", std::move(events));
  document.Set("displayTimeUnit", JsonValue::Str("ms"));
  return document;
}

std::string Tracer::ExportJsonl() const {
  std::vector<TraceSpan> spans;
  std::vector<TraceEdge> edges;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spans = finished_;
    edges = edges_;
  }
  std::string out;
  for (const TraceSpan& span : spans) {
    JsonValue line = JsonValue::Object();
    line.Set("type", JsonValue::Str(span.instant ? "instant" : "span"));
    line.Set("id", JsonValue::Uint(span.id));
    line.Set("parent", JsonValue::Uint(span.parent));
    line.Set("node", JsonValue::Uint(span.node));
    line.Set("name", JsonValue::Str(span.name));
    if (!span.flow.empty()) line.Set("flow", JsonValue::Str(span.flow));
    line.Set("ts_us", JsonValue::Int(span.start_vt_us));
    line.Set("dur_us", JsonValue::Int(span.end_vt_us - span.start_vt_us));
    line.Set("wall_ns",
             JsonValue::Uint(span.end_wall_ns - span.start_wall_ns));
    if (span.link_in != 0) {
      line.Set("link_in", JsonValue::Uint(span.link_in));
    }
    if (!span.args.empty()) {
      JsonValue args = JsonValue::Object();
      for (const auto& [key, value] : span.args) {
        args.Set(key, JsonValue::Str(value));
      }
      line.Set("args", std::move(args));
    }
    out += line.Dump();
    out += '\n';
  }
  for (const TraceEdge& edge : edges) {
    JsonValue line = JsonValue::Object();
    line.Set("type", JsonValue::Str("edge"));
    line.Set("correlation", JsonValue::Uint(edge.correlation));
    line.Set("from", JsonValue::Uint(edge.from_span));
    line.Set("to", JsonValue::Uint(edge.to_span));
    out += line.Dump();
    out += '\n';
  }
  return out;
}

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("trace: cannot open '" + path +
                               "' for writing");
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.close();
  if (!out) return Status::Unavailable("trace: short write to '" + path + "'");
  return Status::Ok();
}

}  // namespace

Status Tracer::WriteChromeTrace(const std::string& path) const {
  return WriteFile(path, ExportChromeTrace().Dump());
}

Status Tracer::WriteJsonl(const std::string& path) const {
  return WriteFile(path, ExportJsonl());
}

}  // namespace codb
