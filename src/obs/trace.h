// Distributed flow tracer: Dapper-style spans over the coDB protocol.
//
// A span is one named interval of work on one node — delivering a message,
// evaluating a coordination rule, appending to the WAL — optionally tagged
// with the flow (the FlowId string of the diffusing update/query) it
// belongs to. Spans nest per thread: BeginSpan pushes onto a thread-local
// stack, so an evaluator span opened inside an update handler becomes its
// child without the evaluator knowing about nodes or networks
// (BeginSpanHere inherits node and parent from the enclosing span).
//
// Cross-node edges come from message hops: the sender calls NoteSend()
// which mints a correlation id (stored in Message::trace_id, in-memory
// only — never serialized) and remembers the span that emitted it; the
// network calls LinkDelivery() when it opens the delivery span on the
// receiving node, which parents the delivery span under the sending span
// and records a flow-arrow edge for the Chrome export.
//
// Timestamps are recorded in BOTH clocks: the network's virtual clock
// (primary axis — deterministic, meaningful in the simulator) and the
// process steady clock (wall_ns args, meaningful under ThreadedNetwork).
// The instrumented layers publish the virtual clock via SetVirtualTime
// before invoking handlers.
//
// Cost model: tracing is OFF by default. Every instrumentation site first
// does one relaxed atomic load (`enabled()`); when disabled, BeginSpan
// returns 0 and EndSpan(0)/Instant/NoteSend are no-ops, so the hot paths
// pay a load+branch. When enabled, spans append under a mutex — acceptable
// for debugging runs, not for benchmarking (benches keep it off).
//
// Exports: Chrome trace_event JSON (one "process" per node, loadable in
// chrome://tracing / Perfetto), a JSONL structured-event stream, and the
// in-memory FinishedSpans() the codb_trace CLI and tests consume.

#ifndef CODB_OBS_TRACE_H_
#define CODB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/status.h"

namespace codb {

struct TraceSpan {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root (no parent on any node)
  uint32_t node = 0;    // network peer id; "pid" in the Chrome export
  uint32_t thread = 0;  // small per-thread ordinal; "tid" in the export
  std::string name;
  std::string flow;  // FlowId::ToString() of the owning flow; may be empty
  int64_t start_vt_us = 0;  // virtual time
  int64_t end_vt_us = 0;
  uint64_t start_wall_ns = 0;
  uint64_t end_wall_ns = 0;
  uint64_t link_in = 0;  // correlation id of the hop that opened this span
  bool instant = false;
  std::vector<std::pair<std::string, std::string>> args;
};

// One message hop: sender span -> receiver span, keyed by correlation id.
struct TraceEdge {
  uint64_t correlation = 0;
  uint64_t from_span = 0;  // 0 when the send had no enclosing span
  uint64_t to_span = 0;
};

class Tracer {
 public:
  static Tracer& Global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded spans, edges and node names; keeps enabled state.
  void Clear();

  // Names the Chrome "process" for a node (shown instead of "pid N").
  void SetNodeName(uint32_t node, const std::string& name);

  // Publishes the current virtual time for spans opened/closed on this
  // thread. The network calls this before dispatching each event.
  static void SetVirtualTime(int64_t now_us);

  // Opens a span on `node`; parent is the innermost open span on this
  // thread (any node). Returns 0 (a no-op handle) when disabled.
  uint64_t BeginSpan(uint32_t node, const std::string& name,
                     const std::string& flow = "");

  // Opens a span inheriting node + parent from the enclosing span on this
  // thread. Returns 0 when disabled or when there is no enclosing span —
  // this is what lets the evaluator and storage layers trace without any
  // node context of their own.
  uint64_t BeginSpanHere(const std::string& name,
                         const std::string& flow = "");

  void EndSpan(uint64_t id);

  // Attaches a key/value arg to an open span. No-op for id 0.
  void AddArg(uint64_t id, const std::string& key, const std::string& value);

  // Records a zero-duration event on `node` (child of the enclosing span).
  void Instant(uint32_t node, const std::string& name,
               const std::string& flow = "");

  // Mints a correlation id for a message about to be sent and remembers
  // the innermost open span on this thread as the hop's source. Returns 0
  // when disabled; 0 is ignored by LinkDelivery.
  uint64_t NoteSend();

  // Links the hop `correlation` to the (open) delivery span: the span is
  // parented under the sending span and a flow arrow is recorded.
  void LinkDelivery(uint64_t correlation, uint64_t span_id);

  size_t open_span_count() const;
  std::vector<TraceSpan> FinishedSpans() const;
  std::vector<TraceEdge> Edges() const;
  std::map<uint32_t, std::string> NodeNames() const;

  // Chrome trace_event document: {"traceEvents": [...]}.
  JsonValue ExportChromeTrace() const;
  // One JSON object per line: spans, then edges.
  std::string ExportJsonl() const;

  Status WriteChromeTrace(const std::string& path) const;
  Status WriteJsonl(const std::string& path) const;

 private:
  uint64_t BeginSpanInternal(uint32_t node, uint64_t parent,
                             const std::string& name,
                             const std::string& flow);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mutex_;
  std::map<uint64_t, TraceSpan> open_;
  std::vector<TraceSpan> finished_;
  std::vector<TraceEdge> edges_;
  std::map<uint64_t, uint64_t> pending_sends_;  // correlation -> from span
  std::map<uint32_t, std::string> node_names_;
};

// RAII handle closing a span on scope exit. Safe to hold a 0 handle.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  explicit ScopedSpan(uint64_t id) : id_(id) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept : id_(other.id_) {
    other.id_ = 0;
  }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    if (this != &other) {
      End();
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }
  ~ScopedSpan() { End(); }

  uint64_t id() const { return id_; }

  void End() {
    if (id_ != 0) {
      Tracer::Global().EndSpan(id_);
      id_ = 0;
    }
  }

 private:
  uint64_t id_ = 0;
};

}  // namespace codb

#endif  // CODB_OBS_TRACE_H_
