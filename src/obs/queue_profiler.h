// Event-loop profiler (DESIGN.md §12): what is the queue doing?
//
// Both runtimes own one of these and feed it from their dispatch loops:
//
//   * queue sojourn  — enqueue-to-dispatch time of every delivered
//     message, per cost class. On the simulator this is virtual time and
//     includes the pipe's modeled latency + bandwidth queueing (the O(n²)
//     config broadcast shows up here as a growing per-message wait on the
//     super-peer's pipes); on the threaded runtime it is wall time in the
//     per-peer inbox.
//   * handler service time — wall microseconds inside HandleMessage, per
//     class, on both runtimes.
//   * queue depth — high-watermark gauges for the foreground and
//     maintenance lanes (simulator: the two event heaps; threaded: the
//     deepest per-peer inbox vs. the timer set).
//   * scheduled-timer lag — how late a timer action fired relative to its
//     due time (late maintenance events surfacing after Run() advanced
//     the clock, or a busy timer thread).
//
// Off-by-default-cheap: every Record* call is one atomic flag load + a
// branch until Enable() is called; the instruments are registered at
// Enable() time, so a disabled profiler allocates nothing on dispatch.

#ifndef CODB_OBS_QUEUE_PROFILER_H_
#define CODB_OBS_QUEUE_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "obs/cost_ledger.h"
#include "obs/metrics.h"

namespace codb {

class QueueProfiler {
 public:
  QueueProfiler() = default;
  QueueProfiler(const QueueProfiler&) = delete;
  QueueProfiler& operator=(const QueueProfiler&) = delete;

  // Registers the instruments and turns recording on. Idempotent. Call
  // before traffic starts (the enabled flag is released so concurrent
  // Record* calls observe fully-initialized instrument pointers).
  void Enable();
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  void RecordSojourn(CostClass cls, int64_t us);
  void RecordService(CostClass cls, int64_t us);
  void RecordTimerLag(int64_t us);
  // High-watermark depth of one lane; the gauges keep the maximum seen.
  void NoteQueueDepth(bool maintenance, size_t depth);

  // Snapshot of `queue.sojourn_us.<class>` / `queue.service_us.<class>`
  // histograms, `queue.timer_lag_us`, and the `queue.depth.fg` /
  // `queue.depth.maint` gauges. Empty before Enable().
  MetricsSnapshot Snapshot() const;

 private:
  std::atomic<bool> enabled_{false};
  MetricsRegistry registry_;
  std::array<Histogram*, kCostClassCount> sojourn_{};
  std::array<Histogram*, kCostClassCount> service_{};
  Histogram* timer_lag_ = nullptr;
  Gauge* depth_fg_ = nullptr;
  Gauge* depth_maint_ = nullptr;
  std::atomic<int64_t> fg_watermark_{0};
  std::atomic<int64_t> maint_watermark_{0};
};

}  // namespace codb

#endif  // CODB_OBS_QUEUE_PROFILER_H_
