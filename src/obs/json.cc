#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace codb {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  return Number(static_cast<double>(i));
}

JsonValue JsonValue::Uint(uint64_t u) {
  return Number(static_cast<double>(u));
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

void JsonValue::Push(JsonValue v) {
  if (type_ == Type::kArray) items_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  if (type_ == Type::kObject) members_[key] = std::move(v);
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void DumpTo(const JsonValue& v, std::string& out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += v.AsBool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      double d = v.AsNumber();
      if (!std::isfinite(d)) {
        out += "null";  // JSON has no NaN/Inf
        return;
      }
      char buf[40];
      // Integral values print without a fraction so counters stay exact.
      if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", d);
      }
      out += buf;
      return;
    }
    case JsonValue::Type::kString:
      out += '"';
      out += JsonEscape(v.AsString());
      out += '"';
      return;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        DumpTo(item, out);
      }
      out += ']';
      return;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += JsonEscape(key);
        out += "\":";
        DumpTo(member, out);
      }
      out += '}';
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipSpace();
    CODB_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        CODB_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseLiteral(const char* word, JsonValue value) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("expected '") + word + "'");
      }
    }
    return value;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return JsonValue::Number(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are not needed
          // by our own exports; lone surrogates encode as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Error("expected '['");
    JsonValue array = JsonValue::Array();
    SkipSpace();
    if (Consume(']')) return array;
    for (;;) {
      SkipSpace();
      CODB_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      array.Push(std::move(item));
      SkipSpace();
      if (Consume(']')) return array;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Error("expected '{'");
    JsonValue object = JsonValue::Object();
    SkipSpace();
    if (Consume('}')) return object;
    for (;;) {
      SkipSpace();
      CODB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      CODB_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object.Set(key, std::move(value));
      SkipSpace();
      if (Consume('}')) return object;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, out);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace codb
