// Minimal JSON document model, writer and parser.
//
// The observability layer speaks JSON in three places: the Chrome
// trace_event export (obs/trace.h), the structured JSONL event stream, and
// the machine-readable `--json` mode of the benchmark harnesses. All three
// build documents through JsonValue and serialize with Dump(); the trace
// CLI and the golden tests parse exports back with Parse() to prove the
// files are well-formed. Nothing here aims at being a general-purpose JSON
// library — it covers exactly RFC 8259 documents with UTF-8 passed through
// verbatim.

#ifndef CODB_OBS_JSON_H_
#define CODB_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace codb {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue Int(int64_t v);
  static JsonValue Uint(uint64_t v);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  const std::map<std::string, JsonValue>& members() const { return members_; }

  // Array append / object insert; no-ops on other types.
  void Push(JsonValue v);
  void Set(const std::string& key, JsonValue v);

  // Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Convenience accessors with defaults for absent/mistyped members.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetNumber(const std::string& key, double fallback = 0) const;

  // Compact serialization (no insignificant whitespace).
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;
};

// Parses one JSON document; trailing non-whitespace is a parse error.
Result<JsonValue> ParseJson(const std::string& text);

// Escapes `s` as the contents of a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace codb

#endif  // CODB_OBS_JSON_H_
