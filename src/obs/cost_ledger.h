// Wire-cost ledger (DESIGN.md §12): attributes every byte the network
// carries to the subsystem that caused it.
//
// PR 2's metrics count messages per wire type; the scale sweeps (E14)
// showed that the quantities worth optimizing are per-*subsystem* byte
// volumes — the O(n²) config broadcast, discovery's announcement flood,
// retransmission waste — which cut across message types and directions.
// The ledger classifies each sent/received message into a CostClass and
// accounts bytes + counts per class, per direction, and per peer pair
// (send side), entirely with relaxed atomics so an attached ledger stays
// off the critical path.
//
// Deployment shape: every node owns one ledger inside its statistical
// module; the runtimes (net/network.cc, net/threaded_network.cc) record
// the send side into the source's ledger and the receive side into the
// destination's. Snapshot() emits plain `cost.*` counters into a
// MetricsSnapshot, so the per-node breakdown rides the existing
// kStatsReport trailer unchanged and merges network-wide through the
// super-peer exactly like every other metric. A network-wide ledger can
// additionally be installed for benches that want totals without a stats
// collection (NetworkBase::SetGlobalCostLedger).
//
// Off-by-default-cheap: nothing here runs unless a ledger is attached —
// the runtimes guard recording behind one atomic flag load.

#ifndef CODB_OBS_COST_LEDGER_H_
#define CODB_OBS_COST_LEDGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "net/message.h"
#include "obs/metrics.h"

namespace codb {

// The subsystem a message's bytes are charged to. Retransmission wins
// over the wire type: a resent UPDATE_DATA is reliability waste, not
// goodput, and the upcoming optimization PRs must see it as such.
enum class CostClass : uint8_t {
  kData = 0,      // update/query payload traffic (the goodput)
  kControl,       // flow control: link-closed, completes, stats exchange
  kAck,           // receipts: delivery acks + Dijkstra-Scholten acks
  kRetransmit,    // reliability-layer resends (any wire type)
  kDiscovery,     // advertisement flood
  kConfig,        // super-peer config broadcast (the O(n²) wall)
  kMembership,    // heartbeat beacons + echoes
  kFederation,    // super-peer federation digests
};
inline constexpr size_t kCostClassCount = 8;

// Lowercase metric-name-safe label ("data", "retx", "config", ...).
const char* CostClassName(CostClass cls);

CostClass ClassifyMessage(MessageType type, bool retransmit);
inline CostClass ClassifyMessage(const Message& message) {
  return ClassifyMessage(message.type, message.retransmit);
}

class CostLedger {
 public:
  struct Totals {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };

  CostLedger() = default;
  CostLedger(const CostLedger&) = delete;
  CostLedger& operator=(const CostLedger&) = delete;

  // Hot path: per-class cells are relaxed atomics; the per-pair map takes
  // a (virtually uncontended) mutex. Send-side pairs only — the receive
  // side of the same traffic is the mirrored key in the peer's ledger.
  void RecordSend(const Message& message);
  void RecordRecv(const Message& message);

  Totals Sent(CostClass cls) const;
  Totals Received(CostClass cls) const;
  uint64_t SentBytes(CostClass cls) const { return Sent(cls).bytes; }
  uint64_t ReceivedBytes(CostClass cls) const { return Received(cls).bytes; }
  uint64_t TotalSentBytes() const;

  // Send-side totals for one (src, dst) pair and class.
  Totals PairSent(uint32_t src, uint32_t dst, CostClass cls) const;

  // True when nothing was ever recorded.
  bool empty() const;

  // The export form: `cost.sent.<class>.bytes`, `cost.sent.<class>.msgs`,
  // `cost.recv.<class>.bytes`, `cost.recv.<class>.msgs` counters, only
  // for classes with traffic — an idle ledger snapshots to nothing, so
  // kStatsReport payloads are byte-identical until profiling is enabled.
  MetricsSnapshot Snapshot() const;

 private:
  struct Cell {
    std::atomic<uint64_t> messages{0};
    std::atomic<uint64_t> bytes{0};
  };

  std::array<Cell, kCostClassCount> sent_;
  std::array<Cell, kCostClassCount> recv_;

  mutable std::mutex pair_mutex_;
  std::map<std::pair<uint32_t, uint32_t>,
           std::array<Totals, kCostClassCount>>
      pairs_;
};

// Renders the `cost.*` entries of a (possibly node-merged) snapshot as a
// per-class table with a percent-of-total column; empty string when the
// snapshot carries no cost entries. The super-peer reports and codb_profile
// both format through here so the views cannot drift.
std::string RenderCostBreakdown(const MetricsSnapshot& snapshot,
                                const std::string& indent = "  ");

}  // namespace codb

#endif  // CODB_OBS_COST_LEDGER_H_
