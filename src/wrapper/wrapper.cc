#include "wrapper/wrapper.h"

#include "query/evaluator.h"

namespace codb {

Result<std::unique_ptr<Wrapper>> Wrapper::ForDatabase(
    Database* ldb, DatabaseSchema exported) {
  if (ldb == nullptr) {
    return Status::InvalidArgument(
        "ForDatabase needs a database; use ForMediator for LDB-less nodes");
  }
  auto wrapper = std::unique_ptr<Wrapper>(new Wrapper());
  DatabaseSchema catalog = ldb->Schema();
  CODB_RETURN_IF_ERROR(wrapper->dbs_.SetExported(std::move(exported),
                                                 &catalog));
  wrapper->ldb_ = ldb;
  wrapper->storage_ = ldb;
  return wrapper;
}

Result<std::unique_ptr<Wrapper>> Wrapper::ForMediator(
    DatabaseSchema exported) {
  auto wrapper = std::unique_ptr<Wrapper>(new Wrapper());
  wrapper->is_mediator_ = true;
  wrapper->transient_ = std::make_unique<Database>();
  for (const RelationSchema& rel : exported.relations()) {
    CODB_RETURN_IF_ERROR(wrapper->transient_->CreateRelation(rel));
  }
  CODB_RETURN_IF_ERROR(wrapper->dbs_.SetExported(std::move(exported),
                                                 /*full_catalog=*/nullptr));
  wrapper->storage_ = wrapper->transient_.get();
  return wrapper;
}

Result<std::map<std::string, std::vector<Tuple>>> Wrapper::ApplyHeadTuples(
    const std::vector<HeadTuple>& tuples) {
  // Group by relation so InsertNew batches per relation.
  std::map<std::string, std::vector<Tuple>> grouped;
  for (const HeadTuple& ht : tuples) {
    grouped[ht.relation].push_back(ht.tuple);
  }
  std::map<std::string, std::vector<Tuple>> fresh;
  for (auto& [relation, batch] : grouped) {
    CODB_ASSIGN_OR_RETURN(Relation * rel, storage_->Get(relation));
    std::vector<Tuple> added = rel->InsertNew(batch);
    if (added.empty()) continue;
    std::unordered_set<Tuple, TupleHash>& provenance = imported_[relation];
    for (const Tuple& tuple : added) {
      provenance.insert(tuple);
      if (journal_ != nullptr) journal_->LogInsert(relation, tuple);
    }
    fresh.emplace(relation, std::move(added));
  }
  return fresh;
}

void Wrapper::DropImported() {
  for (auto& [relation_name, provenance] : imported_) {
    Relation* relation = storage_->Find(relation_name);
    if (relation == nullptr || provenance.empty()) continue;
    std::vector<Tuple> kept;
    kept.reserve(relation->size());
    for (const Tuple& tuple : relation->rows()) {
      if (provenance.find(tuple) == provenance.end()) {
        kept.push_back(tuple);
      }
    }
    relation->Clear();
    for (const Tuple& tuple : kept) relation->Insert(tuple);
  }
  imported_.clear();
}

size_t Wrapper::ImportedCount() const {
  size_t total = 0;
  for (const auto& [relation, provenance] : imported_) {
    total += provenance.size();
  }
  return total;
}

Result<std::vector<Tuple>> Wrapper::EvaluateQuery(
    const ConjunctiveQuery& query) const {
  if (query.head.size() != 1) {
    return Status::InvalidArgument(
        "node queries must have a single head atom");
  }
  if (!query.ExistentialVars().empty()) {
    return Status::InvalidArgument(
        "node queries must have a safe head (no existential variables)");
  }
  std::vector<std::string> output;
  for (const Term& term : query.head[0].terms) {
    if (term.is_var()) output.push_back(term.var());
  }
  DatabaseSchema schema = storage_->Schema();
  CODB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                        CompiledQuery::Compile(query, schema, output));
  return compiled.Evaluate(*storage_);
}

}  // namespace codb
