#include "wrapper/wrapper.h"

#include "query/evaluator.h"

namespace codb {

Result<std::unique_ptr<Wrapper>> Wrapper::ForDatabase(
    Database* ldb, DatabaseSchema exported) {
  if (ldb == nullptr) {
    return Status::InvalidArgument(
        "ForDatabase needs a database; use ForMediator for LDB-less nodes");
  }
  auto wrapper = std::unique_ptr<Wrapper>(new Wrapper());
  DatabaseSchema catalog = ldb->Schema();
  CODB_RETURN_IF_ERROR(wrapper->dbs_.SetExported(std::move(exported),
                                                 &catalog));
  wrapper->ldb_ = ldb;
  wrapper->storage_ = ldb;
  wrapper->PrecreateProvenance();
  return wrapper;
}

Result<std::unique_ptr<Wrapper>> Wrapper::ForMediator(
    DatabaseSchema exported) {
  auto wrapper = std::unique_ptr<Wrapper>(new Wrapper());
  wrapper->is_mediator_ = true;
  wrapper->transient_ = std::make_unique<Database>();
  for (const RelationSchema& rel : exported.relations()) {
    CODB_RETURN_IF_ERROR(wrapper->transient_->CreateRelation(rel));
  }
  CODB_RETURN_IF_ERROR(wrapper->dbs_.SetExported(std::move(exported),
                                                 /*full_catalog=*/nullptr));
  wrapper->storage_ = wrapper->transient_.get();
  wrapper->PrecreateProvenance();
  return wrapper;
}

void Wrapper::PrecreateProvenance() {
  // Create the provenance entry of every exported relation up front so
  // ApplyHeadTuples never mutates the *structure* of imported_ — a
  // concurrent ImportedCount then only races on the vectors, which the
  // store lock already mediates.
  for (const RelationSchema& rel : dbs_.exported().relations()) {
    imported_[rel.name()];
  }
}

Result<std::map<std::string, std::vector<Tuple>>> Wrapper::ApplyHeadTuples(
    const std::vector<HeadTuple>& tuples) {
  // Writer side of the store lock: exclusive on exactly the shards of the
  // relations this batch touches, so query overlays copying other
  // relations can proceed (readers take all shards shared, so they still
  // exclude every writer).
  std::vector<const std::string*> names;
  names.reserve(tuples.size());
  for (const HeadTuple& ht : tuples) names.push_back(&ht.relation);
  ShardedRWLock::WriteSetGuard write_guard(
      store_lock_,
      store_lock_.SortedShardsOf(
          names.begin(), names.end(),
          [](const std::string* name) -> const std::string& {
            return *name;
          }));
  // A batch touches only a handful of relations but its tuples arrive
  // interleaved (rule heads fire round-robin), so resolve each relation
  // name once into a slot and pick the slot per tuple with a short linear
  // scan — cheaper than a map lookup and a grouping copy per tuple.
  struct Slot {
    const std::string* name;
    Relation* rel;
    std::vector<char>* provenance;
    std::vector<Tuple> added;
  };
  std::vector<Slot> slots;
  for (const HeadTuple& ht : tuples) {
    Slot* slot = nullptr;
    for (Slot& s : slots) {
      if (*s.name == ht.relation) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) {
      CODB_ASSIGN_OR_RETURN(Relation * rel, storage_->Get(ht.relation));
      // Upper bound (the whole batch could target this relation); keeps
      // the dedup set and built indexes from rehashing mid-burst.
      rel->Reserve(rel->size() + tuples.size());
      slots.push_back(Slot{&ht.relation, rel, &imported_[ht.relation], {}});
      slot = &slots.back();
    }
    if (slot->rel->Insert(ht.tuple)) {
      // The fresh tuple is the last row; flag its position as imported.
      slot->provenance->resize(slot->rel->size(), 0);
      slot->provenance->back() = 1;
      if (journal_ != nullptr) {
        // Sinks assume serialized appends; the sharded store lock does
        // not guarantee that across disjoint-relation writers.
        std::lock_guard<std::mutex> journal_lock(journal_mu_);
        journal_->LogInsert(ht.relation, ht.tuple);
      }
      slot->added.push_back(ht.tuple);
    }
  }
  std::map<std::string, std::vector<Tuple>> fresh;
  for (Slot& slot : slots) {
    if (!slot.added.empty()) fresh.emplace(*slot.name, std::move(slot.added));
  }
  return fresh;
}

Status Wrapper::InsertLocal(const std::string& relation,
                            const std::vector<Tuple>& rows) {
  std::vector<Tuple> added;
  {
    const std::string* name = &relation;
    ShardedRWLock::WriteSetGuard write_guard(
        store_lock_,
        store_lock_.SortedShardsOf(
            &name, &name + 1,
            [](const std::string* n) -> const std::string& { return *n; }));
    CODB_ASSIGN_OR_RETURN(Relation * rel, storage_->Get(relation));
    rel->Reserve(rel->size() + rows.size());
    added.reserve(rows.size());
    for (const Tuple& row : rows) {
      // Insert without touching imported_: the provenance vector stays
      // short, so DropImported treats these rows as local and keeps them.
      if (!rel->Insert(row)) continue;
      if (journal_ != nullptr) {
        std::lock_guard<std::mutex> journal_lock(journal_mu_);
        journal_->LogInsert(relation, row);
      }
      added.push_back(row);
    }
  }
  if (!added.empty()) {
    std::lock_guard<std::mutex> delta_lock(delta_mu_);
    std::vector<Tuple>& pending = pending_delta_[relation];
    pending.insert(pending.end(), added.begin(), added.end());
  }
  return Status::Ok();
}

std::map<std::string, std::vector<Tuple>> Wrapper::TakePendingDelta() {
  std::lock_guard<std::mutex> delta_lock(delta_mu_);
  std::map<std::string, std::vector<Tuple>> taken;
  taken.swap(pending_delta_);
  return taken;
}

size_t Wrapper::PendingDeltaRows() const {
  std::lock_guard<std::mutex> delta_lock(delta_mu_);
  size_t total = 0;
  for (const auto& [relation, rows] : pending_delta_) total += rows.size();
  return total;
}

void Wrapper::DropImported() {
  ShardedRWLock::WriteAllGuard write_guard(store_lock_);
  for (auto& [relation_name, provenance] : imported_) {
    Relation* relation = storage_->Find(relation_name);
    if (relation == nullptr || provenance.empty()) continue;
    std::vector<Tuple> kept;
    kept.reserve(relation->size());
    const std::vector<Tuple>& rows = relation->rows();
    for (size_t row = 0; row < rows.size(); ++row) {
      if (row >= provenance.size() || provenance[row] == 0) {
        kept.push_back(rows[row]);
      }
    }
    relation->Clear();
    for (const Tuple& tuple : kept) relation->Insert(tuple);
  }
  // Reset the flags but keep the map structure (see PrecreateProvenance).
  for (auto& [relation_name, provenance] : imported_) provenance.clear();
}

size_t Wrapper::ImportedCount() const {
  ShardedRWLock::ReadAllGuard read_guard(store_lock_);
  size_t total = 0;
  for (const auto& [relation, provenance] : imported_) {
    for (char flag : provenance) total += flag != 0;
  }
  return total;
}

Result<std::vector<Tuple>> Wrapper::EvaluateQuery(
    const ConjunctiveQuery& query) const {
  if (query.head.size() != 1) {
    return Status::InvalidArgument(
        "node queries must have a single head atom");
  }
  if (!query.ExistentialVars().empty()) {
    return Status::InvalidArgument(
        "node queries must have a safe head (no existential variables)");
  }
  std::vector<std::string> output;
  for (const Term& term : query.head[0].terms) {
    if (term.is_var()) output.push_back(term.var());
  }
  ShardedRWLock::ReadAllGuard read_guard(store_lock_);
  DatabaseSchema schema = storage_->Schema();
  CODB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                        CompiledQuery::Compile(query, schema, output));
  return compiled.Evaluate(*storage_);
}

}  // namespace codb
