// The Wrapper: the module between the DBM and the local database.
//
// Per the paper (section 2), the Wrapper "manages connections to LDB and
// executes input database manipulation operations", adapts to the
// underlying database, and — when the LDB is absent — executes joins and
// projections itself so the node can still act as a mediator. It also
// retrieves and maintains the DBS.
//
// In this reproduction the LDB is the in-memory relation engine; the
// wrapper boundary is kept so a different backend could be slotted in
// without touching the DBM. A mediator wrapper owns a transient store laid
// out after the DBS, which holds relayed data during updates.
//
// Locking contract (DESIGN.md §10): once a node admits concurrent flows,
// the store is shared between the update flow (writer) and query flows
// (readers building overlays). Mutating wrapper operations
// (ApplyHeadTuples, DropImported) take the sharded store lock exclusively
// themselves; read-only operations that a caller composes out of direct
// storage() access (rule evaluation, overlay copies, snapshots) must be
// bracketed by the caller with store_lock() guards. Never call a
// self-locking wrapper method while holding a store_lock() guard — the
// shard mutexes are not recursive. The journal sink has its own mutex:
// sinks (the durable WAL) assume serialized appends, which the store lock
// alone would not guarantee against future non-store writers.

#ifndef CODB_WRAPPER_WRAPPER_H_
#define CODB_WRAPPER_WRAPPER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "query/ast.h"
#include "query/rule.h"
#include "relation/database.h"
#include "relation/wal.h"
#include "util/sharded_rwlock.h"
#include "wrapper/dbs_repository.h"

namespace codb {

class Wrapper {
 public:
  // Node with a local database. The wrapper does not own `ldb`.
  static Result<std::unique_ptr<Wrapper>> ForDatabase(
      Database* ldb, DatabaseSchema exported);

  // Mediator node: no LDB; a transient store is created from `exported`.
  static Result<std::unique_ptr<Wrapper>> ForMediator(
      DatabaseSchema exported);

  bool is_mediator() const { return is_mediator_; }
  const DbsRepository& dbs() const { return dbs_; }

  // The store queries and rules execute against: the LDB, or the transient
  // store for mediators.
  Database& storage() { return *storage_; }
  const Database& storage() const { return *storage_; }

  // Inserts head tuples produced by a rule firing and returns, per
  // relation, only the tuples that were actually new (the T' of the
  // paper's dedup step). Unknown relations are an error. Inserted tuples
  // are remembered as *imported* (provenance for refresh updates).
  Result<std::map<std::string, std::vector<Tuple>>> ApplyHeadTuples(
      const std::vector<HeadTuple>& tuples);

  // Inserts rows as *local* base data: NOT marked imported (refresh
  // updates keep them), journaled like any other durable insert, and the
  // actually-new rows are accumulated as the pending delta batch the next
  // incremental update ships (DESIGN.md §14). Unknown relations are an
  // error; duplicate rows are dropped (set semantics) and do not enter
  // the delta.
  Status InsertLocal(const std::string& relation,
                     const std::vector<Tuple>& rows);

  // Hands over — and clears — the rows InsertLocal accumulated since the
  // last call: the seed of UpdateManager::StartIncrementalUpdate.
  std::map<std::string, std::vector<Tuple>> TakePendingDelta();

  // Rows currently pending for the next incremental update.
  size_t PendingDeltaRows() const;

  // Removes every tuple previously recorded as imported, keeping local
  // (seeded/user-inserted) data. A refresh update calls this before the
  // initial link evaluation, so source-side deletions propagate: data no
  // longer derivable simply never comes back.
  void DropImported();

  // Number of tuples currently recorded as imported.
  size_t ImportedCount() const;

  // Evaluates a query whose body refers to this node's exported schema.
  // Output layout: the distinguished variables of the (single) head atom,
  // in head-term order. Compiles per call; rule hot paths use the
  // precompiled CoordinationRule machinery instead.
  Result<std::vector<Tuple>> EvaluateQuery(const ConjunctiveQuery& query)
      const;

  // Total tuples in storage (report/statistics).
  size_t StoredTuples() const { return storage_->TotalTuples(); }

  // Attaches a journal sink: from now on every tuple that
  // ApplyHeadTuples actually inserts is logged, so a restarted node can
  // rebuild its imports (WriteAheadLog::ReplayInto, or the durable WAL's
  // recovery). Pass nullptr to detach. The sink is not owned. Appends to
  // the sink are serialized through an internal mutex (see the locking
  // contract above).
  void AttachJournal(JournalSink* journal) { journal_ = journal; }
  const JournalSink* journal() const { return journal_; }

  // Reader/writer mediation for the store (see the locking contract
  // above). Readers take ReadAllGuard/ReadGuard, the update flow's
  // mutations go through the self-locking methods.
  ShardedRWLock& store_lock() const { return store_lock_; }

 private:
  Wrapper() = default;

  // Creates imported_ entries for every exported relation so later
  // ApplyHeadTuples calls never restructure the map (see .cc).
  void PrecreateProvenance();

  bool is_mediator_ = false;
  Database* ldb_ = nullptr;                   // null for mediators
  std::unique_ptr<Database> transient_;       // owned store for mediators
  Database* storage_ = nullptr;               // ldb_ or transient_.get()
  JournalSink* journal_ = nullptr;            // optional, not owned
  mutable ShardedRWLock store_lock_;
  std::mutex journal_mu_;                     // serializes sink appends
  mutable std::mutex delta_mu_;               // guards pending_delta_
  // Local inserts not yet shipped by an incremental update, per relation.
  std::map<std::string, std::vector<Tuple>> pending_delta_;
  // Import provenance: per relation, a flag per row position marking the
  // tuples that arrived over the network (rows only grow between
  // DropImported calls, so positions are stable).
  std::map<std::string, std::vector<char>> imported_;
  DbsRepository dbs_;
};

}  // namespace codb

#endif  // CODB_WRAPPER_WRAPPER_H_
