#include "wrapper/dbs_repository.h"

namespace codb {

Status DbsRepository::SetExported(DatabaseSchema exported,
                                  const DatabaseSchema* full_catalog) {
  if (full_catalog != nullptr) {
    for (const RelationSchema& rel : exported.relations()) {
      const RelationSchema* in_catalog =
          full_catalog->FindRelation(rel.name());
      if (in_catalog == nullptr) {
        return Status::NotFound("exported relation '" + rel.name() +
                                "' not in the local catalog");
      }
      if (!(*in_catalog == rel)) {
        return Status::InvalidArgument(
            "exported schema for '" + rel.name() +
            "' differs from the local catalog: " + rel.ToString() + " vs " +
            in_catalog->ToString());
      }
    }
  }
  exported_ = std::move(exported);
  return Status::Ok();
}

std::vector<std::string> DbsRepository::ExportedRelationNames() const {
  std::vector<std::string> names;
  for (const RelationSchema& rel : exported_.relations()) {
    names.push_back(rel.name());
  }
  return names;
}

}  // namespace codb
