// The DBS repository: stores and maintains the node's exported database
// schema (the rounded-corner box of Figure 1 in the paper).
//
// The DBS describes the part of the local database that is shared with the
// network; it must always be present for a node to participate, even when
// the local database itself is absent (mediator nodes).

#ifndef CODB_WRAPPER_DBS_REPOSITORY_H_
#define CODB_WRAPPER_DBS_REPOSITORY_H_

#include <string>
#include <vector>

#include "relation/schema.h"
#include "util/status.h"

namespace codb {

class DbsRepository {
 public:
  DbsRepository() = default;

  // Replaces the exported schema. If `full_catalog` is non-null, each
  // exported relation must exist in the catalog with an identical schema
  // (you cannot export what the LDB cannot provide).
  Status SetExported(DatabaseSchema exported,
                     const DatabaseSchema* full_catalog);

  const DatabaseSchema& exported() const { return exported_; }

  bool Exports(const std::string& relation) const {
    return exported_.FindRelation(relation) != nullptr;
  }

  std::vector<std::string> ExportedRelationNames() const;

 private:
  DatabaseSchema exported_;
};

}  // namespace codb

#endif  // CODB_WRAPPER_DBS_REPOSITORY_H_
