#include "util/thread_pool.h"

#include <chrono>

namespace codb {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  int workers = num_threads_ - 1;
  for (int i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Deque>());
  }
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    shutdown_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::Push(Task task) {
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section pairs with the worker's predicate check so
    // the notify cannot land between its pending_ read and its wait.
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

void ThreadPool::Submit(Task task) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (queues_.empty()) {
    auto start = std::chrono::steady_clock::now();
    task();
    busy_us_.fetch_add(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count(),
        std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Push(std::move(task));
}

bool ThreadPool::TryRunOne(size_t home) {
  Task task;
  size_t n = queues_.size();
  bool stole = false;
  for (size_t offset = 0; offset < n && !task; ++offset) {
    size_t q = (home + offset) % n;
    Deque& deque = *queues_[q];
    std::lock_guard<std::mutex> lock(deque.mu);
    if (deque.tasks.empty()) continue;
    if (offset == 0 && home < n) {
      task = std::move(deque.tasks.front());
      deque.tasks.pop_front();
    } else {
      task = std::move(deque.tasks.back());
      deque.tasks.pop_back();
      stole = true;
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  if (stole) stolen_.fetch_add(1, std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  task();
  busy_us_.fetch_add(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count(),
                     std::memory_order_relaxed);
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  for (;;) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (shutdown_) return;
    sleep_cv_.wait(lock, [this] {
      return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_) return;
  }
}

void ThreadPool::RunBatch(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  submitted_.fetch_add(tasks.size(), std::memory_order_relaxed);
  if (queues_.empty()) {
    for (Task& task : tasks) {
      auto start = std::chrono::steady_clock::now();
      task();
      busy_us_.fetch_add(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count(),
          std::memory_order_relaxed);
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // The caller may hold locks that tasks queued by *other* subsystems
  // need (flow strands taking manager monitors or the store lock), so it
  // must never pop arbitrary deque entries here — that could self-
  // deadlock. The batch lives in its own claim-by-index structure; the
  // caller and the helper jobs pushed below claim exclusively from it.
  struct Batch {
    std::vector<Task> tasks;
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  batch->remaining = batch->tasks.size();
  auto run_claimed = [this, batch]() -> bool {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->tasks.size()) return false;
    auto start = std::chrono::steady_clock::now();
    batch->tasks[i]();
    busy_us_.fetch_add(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count(),
        std::memory_order_relaxed);
    executed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(batch->mu);
    if (--batch->remaining == 0) batch->cv.notify_all();
    return true;
  };
  size_t helpers = std::min(queues_.size(), batch->tasks.size());
  submitted_.fetch_add(helpers, std::memory_order_relaxed);
  for (size_t i = 0; i < helpers; ++i) {
    Push([run_claimed] {
      while (run_claimed()) {
      }
    });
  }
  // Participate until the batch index is exhausted, then wait for tasks
  // other threads claimed but have not finished. Progress is guaranteed:
  // every claimed task is actively executing on some thread.
  while (run_claimed()) {
  }
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&batch] { return batch->remaining == 0; });
}

ThreadPool::StatsSnapshot ThreadPool::Stats() const {
  StatsSnapshot snapshot;
  snapshot.submitted = submitted_.load(std::memory_order_relaxed);
  snapshot.executed = executed_.load(std::memory_order_relaxed);
  snapshot.stolen = stolen_.load(std::memory_order_relaxed);
  snapshot.queue_depth = pending_.load(std::memory_order_relaxed);
  snapshot.busy_us = busy_us_.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace codb
