// Wall-clock stopwatch used by the statistics module to time real
// computation (the network cost axis is measured in virtual time by the
// event simulator; see net/network.h).

#ifndef CODB_UTIL_STOPWATCH_H_
#define CODB_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace codb {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction / last Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace codb

#endif  // CODB_UTIL_STOPWATCH_H_
