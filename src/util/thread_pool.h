// A small work-stealing thread pool for intra-node parallelism.
//
// Design points, in the order they mattered:
//   * `num_threads` counts the *caller* too: a pool built with N spawns
//     N-1 workers, and RunBatch has the calling thread participate. A
//     pool with num_threads == 1 therefore spawns no threads at all and
//     degenerates to inline execution — the sequential path stays the
//     sequential path, with no handoff and no extra synchronization.
//   * Per-worker deques with stealing: RunBatch distributes tasks
//     round-robin across the worker deques; an idle worker first drains
//     its own deque (front), then steals from a sibling (back). The
//     batch caller steals from everyone.
//   * Workers sleep on a condition variable when there is no work — the
//     pool must be parked inside every Node without burning a core, and
//     busy-spinning on a single-core box would *invert* any speedup.
//   * No dependency on obs/: stats are plain relaxed atomics, sampled
//     into the metrics registry by whoever owns the pool (see
//     core::Node's `exec.*` gauges). util/ stays the base layer.
//
// Lifetime: tasks must not outlive the pool; the destructor drains
// nothing — it wakes the workers and joins them after their current
// task, so callers (Node, evaluator batches) must reach quiescence
// first. RunBatch always returns with all its tasks completed, which is
// the only completion guarantee the evaluator needs.

#ifndef CODB_UTIL_THREAD_POOL_H_
#define CODB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace codb {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // Spawns max(0, num_threads - 1) worker threads.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Fire-and-forget. With no workers the task runs inline on the
  // calling thread (still counted in the stats).
  void Submit(Task task);

  // Runs every task to completion before returning; the calling thread
  // participates, so progress is guaranteed even when all workers are
  // busy with other work (or when there are no workers at all).
  void RunBatch(std::vector<Task> tasks);

  // Plain counters for the owner to export as metrics.
  struct StatsSnapshot {
    uint64_t submitted = 0;    // tasks handed to the pool
    uint64_t executed = 0;     // tasks completed
    uint64_t stolen = 0;       // tasks taken from a non-home deque
    uint64_t queue_depth = 0;  // instantaneous queued-but-unclaimed
    uint64_t busy_us = 0;      // cumulative task execution time
  };
  StatsSnapshot Stats() const;

 private:
  struct Deque {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t index);
  // Claims one task (own deque front first, then steal siblings' backs;
  // `home` == queues_.size() for the batch caller) and runs it.
  bool TryRunOne(size_t home);
  void Push(Task task);

  const int num_threads_;
  std::vector<std::unique_ptr<Deque>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  bool shutdown_ = false;

  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};
  std::atomic<uint64_t> busy_us_{0};
  std::atomic<uint64_t> next_queue_{0};
};

}  // namespace codb

#endif  // CODB_UTIL_THREAD_POOL_H_
