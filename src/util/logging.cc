#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <iostream>

namespace codb {

namespace {

// Reads CODB_LOG_LEVEL once at startup: debug/info/warning/error/none
// (case-sensitive, also accepts the numeric values 0-4).
LogLevel InitialLevel() {
  const char* env = std::getenv("CODB_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warning") == 0 || std::strcmp(env, "2") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(env, "none") == 0 || std::strcmp(env, "4") == 0) {
    return LogLevel::kNone;
  }
  return LogLevel::kWarning;
}

// The level is read on every CODB_LOG from whatever thread; relaxed is
// enough (a racing SetLogLevel only ever delays/advances filtering).
std::atomic<LogLevel> g_level{InitialLevel()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

// Basename of a path, for compact log prefixes.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// ISO-8601 UTC timestamp with millisecond resolution.
std::string IsoTimestamp() {
  auto now = std::chrono::system_clock::now();
  std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                    now.time_since_epoch())
                    .count() %
                1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday,
                utc.tm_hour, utc.tm_min, utc.tm_sec,
                static_cast<int>(millis));
  return buf;
}

}  // namespace

LogLevel GetLogLevel() {
  return g_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << IsoTimestamp() << " " << LevelTag(level) << " "
          << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal_logging
}  // namespace codb
