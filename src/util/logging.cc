#include "util/logging.h"

#include <cstring>
#include <iostream>

namespace codb {

namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

// Basename of a path, for compact log prefixes.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace internal_logging
}  // namespace codb
