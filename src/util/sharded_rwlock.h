// Sharded reader/writer lock mediating access to a node's relation store
// once several flows can touch it concurrently (DESIGN.md §10).
//
// Keys (relation names) hash to one of N shards, each an independent
// std::shared_mutex. A writer touching one relation takes only that
// shard; whole-store operations (snapshot copies, refresh rebuilds,
// full-body query evaluation) take every shard in index order, which
// also makes multi-shard acquisition deadlock-free by construction: all
// paths acquire shards in ascending index order, and no path acquires a
// second shard while holding a later one.
//
// The lock keeps a cumulative wait-time counter (time spent blocked in
// any guard constructor) so the owner can export it as `exec.lock_wait`.

#ifndef CODB_UTIL_SHARDED_RWLOCK_H_
#define CODB_UTIL_SHARDED_RWLOCK_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

namespace codb {

class ShardedRWLock {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit ShardedRWLock(size_t shards = kDefaultShards) {
    if (shards == 0) shards = 1;
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<std::shared_mutex>());
    }
  }

  ShardedRWLock(const ShardedRWLock&) = delete;
  ShardedRWLock& operator=(const ShardedRWLock&) = delete;

  size_t shard_count() const { return shards_.size(); }
  size_t ShardOf(const std::string& key) const {
    return std::hash<std::string>{}(key) % shards_.size();
  }

  // Cumulative microseconds guards spent acquiring (mostly ~0 when
  // uncontended; grows when readers block behind a writer or vice versa).
  uint64_t wait_us() const {
    return wait_us_.load(std::memory_order_relaxed);
  }

  class ReadGuard {
   public:
    ReadGuard(const ShardedRWLock& lock, const std::string& key)
        : mu_(lock.shards_[lock.ShardOf(key)].get()) {
      auto start = Clock::now();
      mu_->lock_shared();
      lock.Charge(start);
    }
    ~ReadGuard() { mu_->unlock_shared(); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    std::shared_mutex* mu_;
  };

  class WriteGuard {
   public:
    WriteGuard(const ShardedRWLock& lock, const std::string& key)
        : mu_(lock.shards_[lock.ShardOf(key)].get()) {
      auto start = Clock::now();
      mu_->lock();
      lock.Charge(start);
    }
    ~WriteGuard() { mu_->unlock(); }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    std::shared_mutex* mu_;
  };

  // Exclusive lock on a specific ascending set of shard indices (as
  // produced by SortedShardsOf). Orders consistently with the *AllGuards,
  // which also acquire ascending.
  class WriteSetGuard {
   public:
    WriteSetGuard(const ShardedRWLock& lock, std::vector<size_t> shards)
        : lock_(&lock), shards_(std::move(shards)) {
      auto start = Clock::now();
      for (size_t s : shards_) lock_->shards_[s]->lock();
      lock_->Charge(start);
    }
    ~WriteSetGuard() {
      for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
        lock_->shards_[*it]->unlock();
      }
    }
    WriteSetGuard(const WriteSetGuard&) = delete;
    WriteSetGuard& operator=(const WriteSetGuard&) = delete;

   private:
    const ShardedRWLock* lock_;
    std::vector<size_t> shards_;
  };

  // Distinct shard indices of `keys`, ascending — the acquisition order
  // WriteSetGuard requires. `proj` maps an element to its string key.
  template <typename Iter, typename Proj>
  std::vector<size_t> SortedShardsOf(Iter begin, Iter end, Proj proj) const {
    std::vector<size_t> shards;
    for (Iter it = begin; it != end; ++it) {
      shards.push_back(ShardOf(proj(*it)));
    }
    std::sort(shards.begin(), shards.end());
    shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
    return shards;
  }
  template <typename Iter>
  std::vector<size_t> SortedShardsOf(Iter begin, Iter end) const {
    return SortedShardsOf(begin, end,
                          [](const std::string& key) -> const std::string& {
                            return key;
                          });
  }

  class ReadAllGuard {
   public:
    explicit ReadAllGuard(const ShardedRWLock& lock) : lock_(&lock) {
      auto start = Clock::now();
      for (const auto& shard : lock_->shards_) shard->lock_shared();
      lock_->Charge(start);
    }
    ~ReadAllGuard() {
      for (auto it = lock_->shards_.rbegin(); it != lock_->shards_.rend();
           ++it) {
        (*it)->unlock_shared();
      }
    }
    ReadAllGuard(const ReadAllGuard&) = delete;
    ReadAllGuard& operator=(const ReadAllGuard&) = delete;

   private:
    const ShardedRWLock* lock_;
  };

  class WriteAllGuard {
   public:
    explicit WriteAllGuard(const ShardedRWLock& lock) : lock_(&lock) {
      auto start = Clock::now();
      for (const auto& shard : lock_->shards_) shard->lock();
      lock_->Charge(start);
    }
    ~WriteAllGuard() {
      for (auto it = lock_->shards_.rbegin(); it != lock_->shards_.rend();
           ++it) {
        (*it)->unlock();
      }
    }
    WriteAllGuard(const WriteAllGuard&) = delete;
    WriteAllGuard& operator=(const WriteAllGuard&) = delete;

   private:
    const ShardedRWLock* lock_;
  };

 private:
  using Clock = std::chrono::steady_clock;

  void Charge(Clock::time_point start) const {
    wait_us_.fetch_add(std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start)
                           .count(),
                       std::memory_order_relaxed);
  }

  std::vector<std::unique_ptr<std::shared_mutex>> shards_;
  mutable std::atomic<uint64_t> wait_us_{0};
};

}  // namespace codb

#endif  // CODB_UTIL_SHARDED_RWLOCK_H_
