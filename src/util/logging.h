// Minimal leveled logger used across codb.
//
// Logging is stream-based and cheap when the level is disabled:
//
//   CODB_LOG(kInfo) << "update " << id << " finished";
//
// The default level is kWarning so tests and benchmarks stay quiet; examples
// raise it to kInfo to narrate what the network is doing.

#ifndef CODB_UTIL_LOGGING_H_
#define CODB_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace codb {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,  // disables all logging
};

// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

// Accumulates one log line and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace codb

#define CODB_LOG(level)                                          \
  if (::codb::LogLevel::level < ::codb::GetLogLevel()) {         \
  } else                                                         \
    ::codb::internal_logging::LogMessage(::codb::LogLevel::level, \
                                         __FILE__, __LINE__)     \
        .stream()

#endif  // CODB_UTIL_LOGGING_H_
