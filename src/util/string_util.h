// Small string helpers shared across codb (split/join/trim/format).

#ifndef CODB_UTIL_STRING_UTIL_H_
#define CODB_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace codb {

// Splits on `sep`; empty pieces are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

// Joins pieces with `sep` between them.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Renders a byte count as "1.2 KiB" / "3.4 MiB" for reports.
std::string HumanBytes(uint64_t bytes);

}  // namespace codb

#endif  // CODB_UTIL_STRING_UTIL_H_
