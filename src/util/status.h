// Status and Result<T>: exception-free error handling for the coDB library.
//
// Every fallible public API in codb returns a Status (for operations with no
// payload) or a Result<T> (for operations producing a value). Exceptions are
// not thrown across library boundaries.

#ifndef CODB_UTIL_STATUS_H_
#define CODB_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace codb {

// Error taxonomy. Kept deliberately small; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity (relation, peer, rule, ...) missing
  kAlreadyExists,     // uniqueness violated (duplicate relation, peer, ...)
  kFailedPrecondition,// operation not valid in the current state
  kParseError,        // query / rule-file text could not be parsed
  kUnavailable,       // network target unreachable (dropped pipe, dead peer)
  kInternal,          // invariant violation inside codb itself
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error outcome. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "PARSE_ERROR: unexpected token ','".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value or an error. Access to value() requires ok().
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // inside functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace codb

// Early-return helpers. These are the only macros the library exports; they
// carry the project prefix per style rules.
#define CODB_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::codb::Status codb_status_tmp_ = (expr);      \
    if (!codb_status_tmp_.ok()) return codb_status_tmp_; \
  } while (0)

#define CODB_CONCAT_INNER_(a, b) a##b
#define CODB_CONCAT_(a, b) CODB_CONCAT_INNER_(a, b)

#define CODB_ASSIGN_OR_RETURN(lhs, expr) \
  CODB_ASSIGN_OR_RETURN_IMPL_(CODB_CONCAT_(codb_result_, __LINE__), lhs, expr)

#define CODB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // CODB_UTIL_STATUS_H_
