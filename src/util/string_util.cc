#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace codb {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  return StrFormat("%.1f %s", value, units[unit]);
}

}  // namespace codb
