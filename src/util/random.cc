#include "util/random.h"

#include <cassert>

namespace codb {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& lane : state_) lane = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::string Rng::RandomString(int length) {
  std::string out;
  out.reserve(static_cast<size_t>(length));
  for (int i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

}  // namespace codb
