// Seedable pseudo-random number generator for workload generation.
//
// Workload generators and property tests must be reproducible across
// platforms, so codb carries its own small PRNG (xoshiro256**) instead of
// relying on the unspecified distributions of <random>.

#ifndef CODB_UTIL_RANDOM_H_
#define CODB_UTIL_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace codb {

class Rng {
 public:
  // Seeds the four 64-bit lanes from `seed` via splitmix64, so any seed
  // (including 0) produces a well-mixed state.
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [0, bound) ; bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool Chance(double p);

  // Random lowercase ASCII string of the given length.
  std::string RandomString(int length);

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace codb

#endif  // CODB_UTIL_RANDOM_H_
