// Testbed: stands up a complete simulated coDB deployment from a generated
// (or hand-written) network description — nodes, seed data, super-peer(s),
// config broadcast — ready for experiments. Shared by the test suite, the
// benchmark harness and the examples.

#ifndef CODB_WORKLOAD_TESTBED_H_
#define CODB_WORKLOAD_TESTBED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/super_peer.h"
#include "membership/membership.h"
#include "net/fault.h"
#include "net/network.h"
#include "net/threaded_network.h"
#include "storage/storage_options.h"
#include "workload/topology_gen.h"

namespace codb {

class Testbed {
 public:
  struct Options {
    Node::Options node;
    // Events the initial settle run may consume (discovery + config).
    uint64_t settle_event_cap = 1'000'000;
    // false: deterministic discrete-event simulator (the default).
    // true: ThreadedNetwork — one real delivery thread per peer.
    bool threaded = false;
    // When storage.directory is non-empty, every non-mediator node gets
    // durable storage under <directory>/<node name> (crash-kill via
    // KillNode, disk-backed restart via RestartNode).
    StorageOptions storage;
    // Fault profile installed as the network default AFTER the initial
    // settle run, so discovery and the config broadcast stay fault-free
    // while all experiment traffic rides the unreliable network.
    FaultProfile fault;
    // Convenience knobs over node.exec (core/node.h): when node_threads
    // is > 0 it overrides node.exec.num_threads on every spawned node;
    // concurrent_flows likewise. Benches and tests flip these instead of
    // reaching into node.exec.
    int node_threads = 0;
    bool concurrent_flows = false;
    // Membership layer (DESIGN.md §11): when true every node — and every
    // super-peer — runs a HeartbeatSession after the deployment settled.
    // Beacon traffic rides the maintenance lane, so Run()-driven tests
    // are unaffected; advance time with RunFor/RunUntil to let suspicion
    // and eviction fire.
    bool membership = false;
    MembershipOptions membership_options;
    // Observability (DESIGN.md §12): when true, a testbed-wide cost
    // ledger is attached as the network's global ledger, every node and
    // super-peer attaches its own ledger, and the event-loop profiler is
    // enabled — all BEFORE the config broadcast, so the O(n²) settle
    // traffic is accounted. Off by default: the unprofiled deployment
    // pays one atomic load per dispatch and nothing else.
    bool profiling = false;
    // Number of federated super-peers. 1 (the default) is the historical
    // single super-peer owning the whole network. With S > 1 the node
    // declarations are split into S contiguous regions, each owned by one
    // super-peer; the supers exchange kFederationReport digests after a
    // collection, so CollectStats still yields the network-wide view
    // (from any super via FederatedAggregate/FederatedReport).
    int super_peers = 1;
  };

  // Builds the network, creates one Node per declaration, seeds the data,
  // creates the super-peer(s), broadcasts the configuration, and runs the
  // network until the configuration has settled.
  static Result<std::unique_ptr<Testbed>> Create(
      const GeneratedNetwork& generated, Options options);
  static Result<std::unique_ptr<Testbed>> Create(
      const GeneratedNetwork& generated) {
    return Create(generated, Options());
  }

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  NetworkBase& network() { return *network_; }
  // The testbed-wide ledger (meaningful when Options::profiling is on):
  // every message on the network, classified and accounted, without
  // needing a stats collection.
  CostLedger& cost() { return cost_; }
  const CostLedger& cost() const { return cost_; }
  SuperPeer& super_peer() { return *super_peers_.front(); }
  SuperPeer& super_peer(size_t i) { return *super_peers_[i]; }
  size_t super_peer_count() const { return super_peers_.size(); }
  // The super-peer owning `name`'s region (the only one in single-super
  // deployments); null for unknown names.
  SuperPeer* super_of(const std::string& name);

  Node* node(const std::string& name);
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

  // Runs a global update from `initiator` to completion (network
  // quiescence) and returns the update id.
  Result<FlowId> RunGlobalUpdate(const std::string& initiator);

  // Same for a refresh update (drop-imported + full re-derivation: the
  // incremental-equivalence oracle).
  Result<FlowId> RunGlobalRefresh(const std::string& initiator);

  // Same for an incremental update seeded by `initiator`'s pending delta
  // (Node::InsertLocal since the last incremental update).
  Result<FlowId> RunIncrementalUpdate(const std::string& initiator);

  // True if every node that joined `update` observed completion.
  bool AllComplete(const FlowId& update) const;

  // Every node's current store, for oracle comparison.
  NetworkInstance Snapshot() const;

  // Collects statistics into the super-peer(s) (runs the network). With
  // several super-peers the regions' digests are then exchanged over
  // kFederationReport, so super_peer().FederatedAggregate() holds the
  // network-wide view afterwards.
  Status CollectStats();

  // Installs `fault` on the pipe between two named nodes (both
  // directions). `FaultProfile::Partition()` scripts a silent partition:
  // the link eats everything but neither side learns the pipe died.
  Status SetFault(const std::string& a, const std::string& b,
                  const FaultProfile& fault);

  // Crash-kills a node: it leaves the network without any shutdown
  // courtesy (pipes snap, in-flight messages are dropped) — exactly what
  // its peers see when a process dies. The node object is parked, not
  // destroyed: on the threaded runtime a delivery thread may still be
  // inside its handler.
  Status KillNode(const std::string& name);

  // Silently kills a node: every one of its pipes is partitioned (both
  // directions) and its beaconing stops, but NO pipe-closed notification
  // fires — peers cannot tell the death from a slow link and must
  // *detect* it through the membership layer. This is the failure mode
  // the suspicion/eviction machinery exists for; without membership the
  // rest of the network would wait on the victim forever.
  Status SilentKillNode(const std::string& name);

  // Restarts a previously killed node from its declaration. The store is
  // NOT re-seeded — with durable storage the content comes back from disk
  // (checkpoint + WAL replay); without it the node restarts empty. The
  // configuration is re-broadcast (every super-peer covers its region) so
  // the whole network rebuilds pipes to the new peer id, and the network
  // runs until settled.
  Result<Node*> RestartNode(const std::string& name);

 private:
  Testbed() = default;

  Result<Node*> SpawnNode(const NodeDecl& decl, bool seed);

  GeneratedNetwork generated_;
  Options options_;
  std::unique_ptr<NetworkBase> network_;
  CostLedger cost_;  // global wire-cost ledger (Options::profiling)
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::string, Node*> by_name_;
  std::vector<std::unique_ptr<Node>> graveyard_;  // killed nodes
  std::vector<std::unique_ptr<SuperPeer>> super_peers_;
  std::map<std::string, size_t> region_of_;  // node name -> super index
  // Silently-killed peers still occupy their network slot (no Leave was
  // issued); RestartNode must evict the zombie before re-joining the name.
  std::map<std::string, PeerId> silently_dead_;
};

}  // namespace codb

#endif  // CODB_WORKLOAD_TESTBED_H_
