// Testbed: stands up a complete simulated coDB deployment from a generated
// (or hand-written) network description — nodes, seed data, super-peer,
// config broadcast — ready for experiments. Shared by the test suite, the
// benchmark harness and the examples.

#ifndef CODB_WORKLOAD_TESTBED_H_
#define CODB_WORKLOAD_TESTBED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/super_peer.h"
#include "net/fault.h"
#include "net/network.h"
#include "net/threaded_network.h"
#include "storage/storage_options.h"
#include "workload/topology_gen.h"

namespace codb {

class Testbed {
 public:
  struct Options {
    Node::Options node;
    // Events the initial settle run may consume (discovery + config).
    uint64_t settle_event_cap = 1'000'000;
    // false: deterministic discrete-event simulator (the default).
    // true: ThreadedNetwork — one real delivery thread per peer.
    bool threaded = false;
    // When storage.directory is non-empty, every non-mediator node gets
    // durable storage under <directory>/<node name> (crash-kill via
    // KillNode, disk-backed restart via RestartNode).
    StorageOptions storage;
    // Fault profile installed as the network default AFTER the initial
    // settle run, so discovery and the config broadcast stay fault-free
    // while all experiment traffic rides the unreliable network.
    FaultProfile fault;
    // Convenience knobs over node.exec (core/node.h): when node_threads
    // is > 0 it overrides node.exec.num_threads on every spawned node;
    // concurrent_flows likewise. Benches and tests flip these instead of
    // reaching into node.exec.
    int node_threads = 0;
    bool concurrent_flows = false;
  };

  // Builds the network, creates one Node per declaration, seeds the data,
  // creates the super-peer, broadcasts the configuration, and runs the
  // network until the configuration has settled.
  static Result<std::unique_ptr<Testbed>> Create(
      const GeneratedNetwork& generated, Options options);
  static Result<std::unique_ptr<Testbed>> Create(
      const GeneratedNetwork& generated) {
    return Create(generated, Options());
  }

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  NetworkBase& network() { return *network_; }
  SuperPeer& super_peer() { return *super_peer_; }

  Node* node(const std::string& name);
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }

  // Runs a global update from `initiator` to completion (network
  // quiescence) and returns the update id.
  Result<FlowId> RunGlobalUpdate(const std::string& initiator);

  // True if every node that joined `update` observed completion.
  bool AllComplete(const FlowId& update) const;

  // Every node's current store, for oracle comparison.
  NetworkInstance Snapshot() const;

  // Collects statistics into the super-peer (runs the network).
  Status CollectStats();

  // Installs `fault` on the pipe between two named nodes (both
  // directions). `FaultProfile::Partition()` scripts a silent partition:
  // the link eats everything but neither side learns the pipe died.
  Status SetFault(const std::string& a, const std::string& b,
                  const FaultProfile& fault);

  // Crash-kills a node: it leaves the network without any shutdown
  // courtesy (pipes snap, in-flight messages are dropped) — exactly what
  // its peers see when a process dies. The node object is parked, not
  // destroyed: on the threaded runtime a delivery thread may still be
  // inside its handler.
  Status KillNode(const std::string& name);

  // Restarts a previously killed node from its declaration. The store is
  // NOT re-seeded — with durable storage the content comes back from disk
  // (checkpoint + WAL replay); without it the node restarts empty. The
  // configuration is re-broadcast so the whole network rebuilds pipes to
  // the new peer id, and the network runs until settled.
  Result<Node*> RestartNode(const std::string& name);

 private:
  Testbed() = default;

  Result<Node*> SpawnNode(const NodeDecl& decl, bool seed);

  GeneratedNetwork generated_;
  Options options_;
  std::unique_ptr<NetworkBase> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::string, Node*> by_name_;
  std::vector<std::unique_ptr<Node>> graveyard_;  // killed nodes
  std::unique_ptr<SuperPeer> super_peer_;
};

}  // namespace codb

#endif  // CODB_WORKLOAD_TESTBED_H_
