#include "workload/topology_gen.h"

#include <cassert>

#include "query/parser.h"

namespace codb {

namespace {

// Builds the GLAV query text for one rule of the given style.
std::string RuleQueryText(RuleStyle style, int filter_threshold) {
  switch (style) {
    case RuleStyle::kCopy:
      return "d(K, V) :- d(K, V).";
    case RuleStyle::kProject:
      return "d(K, Z) :- d(K, V).";
    case RuleStyle::kJoin:
      return "d(K, W) :- d(K, V), e(K, W).";
    case RuleStyle::kFilter:
      return "d(K, V) :- d(K, V), V < " +
             std::to_string(filter_threshold) + ".";
    case RuleStyle::kMultiHead:
      return "d(K, Z), e(K, Z) :- d(K, V).";
    case RuleStyle::kJoinCopy:
      return "d(K, W), e(K, W) :- d(K, V), e(K, W).";
  }
  return "d(K, V) :- d(K, V).";
}

struct Builder {
  explicit Builder(const WorkloadOptions& options)
      : options_(options), rng_(options.seed) {}

  void AddNodes(int count) {
    for (int i = 0; i < count; ++i) {
      NodeDecl decl;
      decl.name = NodeName(i);
      decl.mediator = options_.mediator_every > 0 &&
                      i % options_.mediator_every == options_.mediator_every - 1;
      DatabaseSchema schema = StandardSchema();
      for (const RelationSchema& rel : schema.relations()) {
        decl.relations.push_back(rel);
      }
      config_.AddNode(std::move(decl));
      SeedNode(i);
    }
  }

  // importer <- exporter.
  void AddRule(int importer, int exporter) {
    std::string id = "r" + std::to_string(rule_counter_++);
    Result<ConjunctiveQuery> query = ParseQuery(
        RuleQueryText(options_.style, options_.filter_threshold));
    assert(query.ok());
    config_.AddRule(CoordinationRule(id, NodeName(importer),
                                     NodeName(exporter),
                                     std::move(query).value()));
  }

  void SeedNode(int index) {
    Instance& instance = seeds_[NodeName(index)];
    std::vector<Tuple>& d = instance["d"];
    std::vector<Tuple>& e = instance["e"];
    for (int t = 0; t < options_.tuples_per_node; ++t) {
      int64_t key = static_cast<int64_t>(index) * 10000 + t;
      d.push_back(Tuple{Value::Int(key),
                        Value::Int(rng_.UniformInt(
                            0, options_.value_range - 1))});
      e.push_back(Tuple{Value::Int(key),
                        Value::Int(rng_.UniformInt(
                            0, options_.value_range - 1))});
    }
  }

  GeneratedNetwork Finish() {
    Status valid = config_.Validate();
    assert(valid.ok());
    (void)valid;
    return {std::move(config_), std::move(seeds_)};
  }

  const WorkloadOptions& options_;
  Rng rng_;
  NetworkConfig config_;
  NetworkInstance seeds_;
  int rule_counter_ = 0;
};

}  // namespace

DatabaseSchema StandardSchema() {
  DatabaseSchema schema;
  schema.AddRelation(RelationSchema(
      "d", {{"k", ValueType::kInt}, {"v", ValueType::kInt}}));
  schema.AddRelation(RelationSchema(
      "e", {{"k", ValueType::kInt}, {"w", ValueType::kInt}}));
  return schema;
}

std::string NodeName(int index) {
  std::string name = "n";
  name += std::to_string(index);
  return name;
}

GeneratedNetwork MakeChain(const WorkloadOptions& options) {
  Builder builder(options);
  builder.AddNodes(options.nodes);
  for (int i = 0; i + 1 < options.nodes; ++i) {
    builder.AddRule(/*importer=*/i, /*exporter=*/i + 1);
  }
  return builder.Finish();
}

GeneratedNetwork MakeRing(const WorkloadOptions& options) {
  Builder builder(options);
  builder.AddNodes(options.nodes);
  for (int i = 0; i < options.nodes; ++i) {
    builder.AddRule(/*importer=*/i, /*exporter=*/(i + 1) % options.nodes);
  }
  return builder.Finish();
}

GeneratedNetwork MakeStar(const WorkloadOptions& options) {
  Builder builder(options);
  builder.AddNodes(options.nodes);
  for (int i = 1; i < options.nodes; ++i) {
    builder.AddRule(/*importer=*/0, /*exporter=*/i);
  }
  return builder.Finish();
}

GeneratedNetwork MakeTree(const WorkloadOptions& options) {
  Builder builder(options);
  builder.AddNodes(options.nodes);
  int fanout = options.tree_fanout > 0 ? options.tree_fanout : 2;
  for (int child = 1; child < options.nodes; ++child) {
    int parent = (child - 1) / fanout;
    builder.AddRule(/*importer=*/parent, /*exporter=*/child);
  }
  return builder.Finish();
}

GeneratedNetwork MakeGrid(const WorkloadOptions& options) {
  WorkloadOptions adjusted = options;
  int rows = options.grid_rows;
  int cols = options.grid_cols;
  adjusted.nodes = rows * cols;
  Builder builder(adjusted);
  builder.AddNodes(adjusted.nodes);
  auto index = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r + 1 < rows) builder.AddRule(index(r, c), index(r + 1, c));
      if (c + 1 < cols) builder.AddRule(index(r, c), index(r, c + 1));
    }
  }
  return builder.Finish();
}

namespace {

// One source node of the integration scenario; kind cycles with index.
struct SourceSpec {
  std::string name;
  int kind = 0;  // 0: filtered rename, 1: join, 2: existential project
};

void AddIntegrationSource(NetworkConfig& config, NetworkInstance& seeds,
                          Rng& rng, const WorkloadOptions& options,
                          const SourceSpec& source, int index,
                          const std::string& importer, int* rule_counter) {
  NodeDecl decl;
  decl.name = source.name;
  auto add_rule = [&](const std::string& text) {
    Result<ConjunctiveQuery> query = ParseQuery(text);
    assert(query.ok());
    // Built in two steps: GCC 12's -Wrestrict misfires on the
    // operator+(const char*, string&&) form once inlined here.
    std::string rule_id = "m";
    rule_id += std::to_string((*rule_counter)++);
    Status added = config.AddRule(
        CoordinationRule(rule_id, importer,
                         source.name, std::move(query).value()));
    assert(added.ok());
    (void)added;
  };

  Instance& instance = seeds[source.name];
  int64_t base = static_cast<int64_t>(index) * 10000;
  switch (source.kind) {
    case 0: {
      decl.relations.push_back(RelationSchema(
          "people", {{"pid", ValueType::kInt},
                     {"name", ValueType::kString},
                     {"age", ValueType::kInt}}));
      config.AddNode(std::move(decl));
      for (int t = 0; t < options.tuples_per_node; ++t) {
        instance["people"].push_back(
            Tuple{Value::Int(base + t),
                  Value::String(rng.RandomString(6)),
                  Value::Int(rng.UniformInt(0, 40))});
      }
      add_rule("person(P, N) :- people(P, N, A), A >= 18.");
      add_rule("origin(P, " + std::to_string(index) +
               ") :- people(P, N, A).");
      break;
    }
    case 1: {
      decl.relations.push_back(RelationSchema(
          "emp", {{"eid", ValueType::kInt}, {"dept", ValueType::kInt}}));
      decl.relations.push_back(RelationSchema(
          "dept_name", {{"dept", ValueType::kInt},
                        {"dname", ValueType::kString}}));
      config.AddNode(std::move(decl));
      for (int d = 0; d < 3; ++d) {
        instance["dept_name"].push_back(
            Tuple{Value::Int(d), Value::String(rng.RandomString(5))});
      }
      for (int t = 0; t < options.tuples_per_node; ++t) {
        instance["emp"].push_back(Tuple{Value::Int(base + t),
                                        Value::Int(rng.UniformInt(0, 2))});
      }
      add_rule("person(E, DN) :- emp(E, D), dept_name(D, DN).");
      add_rule("origin(E, " + std::to_string(index) +
               ") :- emp(E, D).");
      break;
    }
    default: {
      decl.relations.push_back(
          RelationSchema("clients", {{"cid", ValueType::kInt}}));
      config.AddNode(std::move(decl));
      for (int t = 0; t < options.tuples_per_node; ++t) {
        instance["clients"].push_back(Tuple{Value::Int(base + t)});
      }
      // Existential witness: the client's name is unknown.
      add_rule("person(C, Z) :- clients(C).");
      add_rule("origin(C, " + std::to_string(index) +
               ") :- clients(C).");
      break;
    }
  }
}

std::vector<RelationSchema> RegistrySchema() {
  return {RelationSchema("person", {{"id", ValueType::kInt},
                                    {"name", ValueType::kString}}),
          RelationSchema("origin", {{"id", ValueType::kInt},
                                    {"src", ValueType::kInt}})};
}

}  // namespace

GeneratedNetwork MakeIntegration(const WorkloadOptions& options,
                                 int sources, bool with_mediators) {
  Rng rng(options.seed);
  NetworkConfig config;
  NetworkInstance seeds;
  int rule_counter = 0;

  NodeDecl registry;
  registry.name = "registry";
  registry.relations = RegistrySchema();
  config.AddNode(std::move(registry));

  for (int i = 0; i < sources; ++i) {
    SourceSpec source{"src" + std::to_string(i), i % 3};
    std::string importer = "registry";
    if (with_mediators && i % 2 == 1) {
      // Route this source through a mediator with the registry schema.
      std::string mediator_name = "med" + std::to_string(i);
      NodeDecl mediator;
      mediator.name = mediator_name;
      mediator.mediator = true;
      mediator.relations = RegistrySchema();
      config.AddNode(std::move(mediator));
      auto relay = [&](const char* text) {
        Result<ConjunctiveQuery> query = ParseQuery(text);
        assert(query.ok());
        config.AddRule(CoordinationRule(
            "relay" + std::to_string(rule_counter++), "registry",
            mediator_name, std::move(query).value()));
      };
      relay("person(I, N) :- person(I, N).");
      relay("origin(I, S) :- origin(I, S).");
      importer = mediator_name;
    }
    AddIntegrationSource(config, seeds, rng, options, source, i, importer,
                         &rule_counter);
  }

  Status valid = config.Validate();
  assert(valid.ok());
  (void)valid;
  return {std::move(config), std::move(seeds)};
}

GeneratedNetwork MakeRandom(const WorkloadOptions& options) {
  Builder builder(options);
  builder.AddNodes(options.nodes);
  for (int i = 0; i < options.nodes; ++i) {
    for (int j = i + 1; j < options.nodes; ++j) {
      if (!builder.rng_.Chance(options.edge_probability)) continue;
      if (builder.rng_.Chance(0.5)) {
        builder.AddRule(i, j);
      } else {
        builder.AddRule(j, i);
      }
    }
  }
  return builder.Finish();
}

}  // namespace codb
