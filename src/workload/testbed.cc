#include "workload/testbed.h"

namespace codb {

Result<std::unique_ptr<Testbed>> Testbed::Create(
    const GeneratedNetwork& generated, Options options) {
  auto testbed = std::unique_ptr<Testbed>(new Testbed());
  testbed->generated_ = generated;
  if (options.node_threads > 0) {
    options.node.exec.num_threads = options.node_threads;
  }
  if (options.concurrent_flows) {
    options.node.exec.concurrent_flows = true;
  }
  testbed->options_ = options;
  if (options.threaded) {
    testbed->network_ = std::make_unique<ThreadedNetwork>();
  } else {
    testbed->network_ = std::make_unique<Network>();
  }

  for (const NodeDecl& decl : generated.config.nodes()) {
    CODB_RETURN_IF_ERROR(testbed->SpawnNode(decl, /*seed=*/true).status());
  }

  testbed->super_peer_ = SuperPeer::Create(testbed->network_.get());
  CODB_RETURN_IF_ERROR(
      testbed->super_peer_->LoadConfig(generated.config));
  CODB_RETURN_IF_ERROR(testbed->super_peer_->BroadcastConfig());
  testbed->network_->Run(options.settle_event_cap);

  for (const auto& node : testbed->nodes_) {
    if (!node->has_config()) {
      return Status::Internal("node '" + node->name() +
                              "' did not receive the configuration");
    }
  }
  // Faults go live only once the deployment has settled: discovery and
  // the config broadcast above ran on a reliable network.
  if (options.fault.Active()) {
    testbed->network_->SetDefaultFaultProfile(options.fault);
  }
  return testbed;
}

Result<Node*> Testbed::SpawnNode(const NodeDecl& decl, bool seed) {
  DatabaseSchema schema;
  for (const RelationSchema& rel : decl.relations) {
    CODB_RETURN_IF_ERROR(schema.AddRelation(rel));
  }
  CODB_ASSIGN_OR_RETURN(
      std::unique_ptr<Node> node,
      Node::Create(network_.get(), decl.name, std::move(schema),
                   decl.mediator, options_.node));

  if (seed) {
    auto it = generated_.seeds.find(decl.name);
    if (it != generated_.seeds.end()) {
      for (const auto& [relation, tuples] : it->second) {
        CODB_ASSIGN_OR_RETURN(Relation * r, node->database().Get(relation));
        for (const Tuple& tuple : tuples) r->Insert(tuple);
      }
    }
  }
  // Durability after seeding: the first enablement checkpoints the seed;
  // a restart recovers it from disk instead (hence no re-seed above).
  if (!options_.storage.directory.empty() && !decl.mediator) {
    StorageOptions per_node = options_.storage;
    per_node.directory += "/" + decl.name;
    CODB_RETURN_IF_ERROR(node->EnableDurability(per_node));
  }

  Node* raw = node.get();
  by_name_[decl.name] = raw;
  nodes_.push_back(std::move(node));
  return raw;
}

Node* Testbed::node(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Status Testbed::KillNode(const std::string& name) {
  Node* victim = node(name);
  if (victim == nullptr) {
    return Status::NotFound("no node named '" + name + "'");
  }
  CODB_RETURN_IF_ERROR(network_->Leave(victim->id()));
  by_name_.erase(name);
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (it->get() == victim) {
      graveyard_.push_back(std::move(*it));
      nodes_.erase(it);
      break;
    }
  }
  return Status::Ok();
}

Result<Node*> Testbed::RestartNode(const std::string& name) {
  if (node(name) != nullptr) {
    return Status::FailedPrecondition("node '" + name +
                                      "' is already running");
  }
  const NodeDecl* decl = generated_.config.FindNode(name);
  if (decl == nullptr) {
    return Status::NotFound("no declaration for node '" + name + "'");
  }
  CODB_ASSIGN_OR_RETURN(Node * revived, SpawnNode(*decl, /*seed=*/false));
  // The node came back under a fresh peer id; re-broadcasting bumps the
  // config version, so every peer rebuilds its pipes and managers against
  // the revived node.
  CODB_RETURN_IF_ERROR(super_peer_->BroadcastConfig());
  network_->Run(options_.settle_event_cap);
  if (!revived->has_config()) {
    return Status::Internal("restarted node '" + name +
                            "' did not receive the configuration");
  }
  return revived;
}

Result<FlowId> Testbed::RunGlobalUpdate(const std::string& initiator) {
  Node* start = node(initiator);
  if (start == nullptr) {
    return Status::NotFound("no node named '" + initiator + "'");
  }
  CODB_ASSIGN_OR_RETURN(FlowId update, start->StartGlobalUpdate());
  network_->Run();
  return update;
}

bool Testbed::AllComplete(const FlowId& update) const {
  for (const auto& node : nodes_) {
    const UpdateManager* manager = node->update_manager();
    if (manager == nullptr) return false;
    if (manager->IsJoined(update) && !manager->IsComplete(update)) {
      return false;
    }
  }
  return true;
}

NetworkInstance Testbed::Snapshot() const {
  NetworkInstance out;
  for (const auto& node : nodes_) {
    out.emplace(node->name(), node->database().Snapshot());
  }
  return out;
}

Status Testbed::SetFault(const std::string& a, const std::string& b,
                         const FaultProfile& fault) {
  Node* node_a = node(a);
  Node* node_b = node(b);
  if (node_a == nullptr || node_b == nullptr) {
    return Status::NotFound("no node named '" +
                            (node_a == nullptr ? a : b) + "'");
  }
  return network_->SetFaultProfile(node_a->id(), node_b->id(), fault);
}

Status Testbed::CollectStats() {
  CODB_RETURN_IF_ERROR(super_peer_->RequestStats());
  network_->Run();
  if (!super_peer_->CollectionComplete()) {
    return Status::Unavailable("some nodes did not report statistics");
  }
  return Status::Ok();
}

}  // namespace codb
