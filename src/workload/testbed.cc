#include "workload/testbed.h"

#include <algorithm>

namespace codb {

Result<std::unique_ptr<Testbed>> Testbed::Create(
    const GeneratedNetwork& generated, Options options) {
  auto testbed = std::unique_ptr<Testbed>(new Testbed());
  testbed->generated_ = generated;
  if (options.node_threads > 0) {
    options.node.exec.num_threads = options.node_threads;
  }
  if (options.concurrent_flows) {
    options.node.exec.concurrent_flows = true;
  }
  testbed->options_ = options;
  if (options.threaded) {
    testbed->network_ = std::make_unique<ThreadedNetwork>();
  } else {
    testbed->network_ = std::make_unique<Network>();
  }
  // Profiling goes on before anything joins or sends, so discovery and
  // the config broadcast below — the O(n²) settle traffic the cost model
  // exists to expose — are fully accounted.
  if (options.profiling) {
    testbed->network_->SetGlobalCostLedger(&testbed->cost_);
    testbed->network_->profiler().Enable();
  }

  for (const NodeDecl& decl : generated.config.nodes()) {
    CODB_RETURN_IF_ERROR(testbed->SpawnNode(decl, /*seed=*/true).status());
  }

  // One super-peer per region. With S == 1 the single super keeps its
  // historical name and an empty region (= the whole network); with more,
  // the declarations are split into S contiguous regions.
  const size_t supers = static_cast<size_t>(
      std::max(1, std::min<int>(options.super_peers,
                                static_cast<int>(
                                    generated.config.nodes().size()))));
  const std::vector<NodeDecl>& decls = generated.config.nodes();
  for (size_t s = 0; s < supers; ++s) {
    std::string name =
        supers == 1 ? "super-peer" : "super-" + std::to_string(s);
    auto super = SuperPeer::Create(testbed->network_.get(), name);
    if (options.profiling) super->EnableProfiling();
    CODB_RETURN_IF_ERROR(super->LoadConfig(generated.config));
    if (supers > 1) {
      std::vector<std::string> region;
      const size_t begin = s * decls.size() / supers;
      const size_t end = (s + 1) * decls.size() / supers;
      for (size_t i = begin; i < end; ++i) {
        region.push_back(decls[i].name);
        testbed->region_of_[decls[i].name] = s;
      }
      super->SetRegion(std::move(region));
    }
    testbed->super_peers_.push_back(std::move(super));
  }
  for (auto& a : testbed->super_peers_) {
    for (auto& b : testbed->super_peers_) {
      if (a.get() != b.get()) a->AddFederationPeer(b->id());
    }
  }
  for (auto& super : testbed->super_peers_) {
    CODB_RETURN_IF_ERROR(super->BroadcastConfig());
  }
  testbed->network_->Run(options.settle_event_cap);

  for (const auto& node : testbed->nodes_) {
    if (!node->has_config()) {
      return Status::Internal("node '" + node->name() +
                              "' did not receive the configuration");
    }
  }
  // Membership after the settle run: pipes exist, so the first beacon
  // tick reaches the real neighbour set. Beacons ride the maintenance
  // lane and never hold Run() open.
  if (options.membership) {
    for (const auto& node : testbed->nodes_) {
      CODB_RETURN_IF_ERROR(
          node->EnableMembership(options.membership_options));
    }
    for (auto& super : testbed->super_peers_) {
      CODB_RETURN_IF_ERROR(
          super->EnableMembership(options.membership_options));
    }
  }
  // Faults go live only once the deployment has settled: discovery and
  // the config broadcast above ran on a reliable network.
  if (options.fault.Active()) {
    testbed->network_->SetDefaultFaultProfile(options.fault);
  }
  return testbed;
}

Result<Node*> Testbed::SpawnNode(const NodeDecl& decl, bool seed) {
  DatabaseSchema schema;
  for (const RelationSchema& rel : decl.relations) {
    CODB_RETURN_IF_ERROR(schema.AddRelation(rel));
  }
  CODB_ASSIGN_OR_RETURN(
      std::unique_ptr<Node> node,
      Node::Create(network_.get(), decl.name, std::move(schema),
                   decl.mediator, options_.node));
  if (options_.profiling) node->EnableProfiling();

  if (seed) {
    auto it = generated_.seeds.find(decl.name);
    if (it != generated_.seeds.end()) {
      for (const auto& [relation, tuples] : it->second) {
        CODB_ASSIGN_OR_RETURN(Relation * r, node->database().Get(relation));
        for (const Tuple& tuple : tuples) r->Insert(tuple);
      }
    }
  }
  // Durability after seeding: the first enablement checkpoints the seed;
  // a restart recovers it from disk instead (hence no re-seed above).
  if (!options_.storage.directory.empty() && !decl.mediator) {
    StorageOptions per_node = options_.storage;
    per_node.directory += "/" + decl.name;
    CODB_RETURN_IF_ERROR(node->EnableDurability(per_node));
  }

  Node* raw = node.get();
  by_name_[decl.name] = raw;
  nodes_.push_back(std::move(node));
  return raw;
}

Node* Testbed::node(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

SuperPeer* Testbed::super_of(const std::string& name) {
  if (super_peers_.empty()) return nullptr;
  auto it = region_of_.find(name);
  if (it == region_of_.end()) {
    return region_of_.empty() ? super_peers_.front().get() : nullptr;
  }
  return super_peers_[it->second].get();
}

Status Testbed::KillNode(const std::string& name) {
  Node* victim = node(name);
  if (victim == nullptr) {
    return Status::NotFound("no node named '" + name + "'");
  }
  CODB_RETURN_IF_ERROR(network_->Leave(victim->id()));
  by_name_.erase(name);
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (it->get() == victim) {
      graveyard_.push_back(std::move(*it));
      nodes_.erase(it);
      break;
    }
  }
  return Status::Ok();
}

Status Testbed::SilentKillNode(const std::string& name) {
  Node* victim = node(name);
  if (victim == nullptr) {
    return Status::NotFound("no node named '" + name + "'");
  }
  // A dead process sends nothing: stop the victim's own beacon loop.
  if (victim->membership() != nullptr) victim->membership()->Stop();
  // Partition every pipe, both directions, WITHOUT closing any of them:
  // peers get no pipe-closed courtesy and must detect the death.
  for (PeerId neighbor : network_->Neighbors(victim->id())) {
    CODB_RETURN_IF_ERROR(network_->SetFaultProfile(
        victim->id(), neighbor, FaultProfile::Partition()));
  }
  silently_dead_[name] = victim->id();
  by_name_.erase(name);
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (it->get() == victim) {
      graveyard_.push_back(std::move(*it));
      nodes_.erase(it);
      break;
    }
  }
  return Status::Ok();
}

Result<Node*> Testbed::RestartNode(const std::string& name) {
  if (node(name) != nullptr) {
    return Status::FailedPrecondition("node '" + name +
                                      "' is already running");
  }
  const NodeDecl* decl = generated_.config.FindNode(name);
  if (decl == nullptr) {
    return Status::NotFound("no declaration for node '" + name + "'");
  }
  // A silently-killed zombie still holds the name's network slot; evict
  // it before the revived node joins under the same name.
  auto zombie = silently_dead_.find(name);
  if (zombie != silently_dead_.end()) {
    CODB_RETURN_IF_ERROR(network_->Leave(zombie->second));
    silently_dead_.erase(zombie);
  }
  CODB_ASSIGN_OR_RETURN(Node * revived, SpawnNode(*decl, /*seed=*/false));
  if (options_.membership) {
    CODB_RETURN_IF_ERROR(
        revived->EnableMembership(options_.membership_options));
  }
  // The node came back under a fresh peer id; re-broadcasting bumps the
  // config version, so every peer rebuilds its pipes and managers against
  // the revived node. Every super-peer broadcasts: rule partners of the
  // revived node may live in any region.
  for (auto& super : super_peers_) {
    CODB_RETURN_IF_ERROR(super->BroadcastConfig());
  }
  network_->Run(options_.settle_event_cap);
  if (!revived->has_config()) {
    return Status::Internal("restarted node '" + name +
                            "' did not receive the configuration");
  }
  return revived;
}

Result<FlowId> Testbed::RunGlobalUpdate(const std::string& initiator) {
  Node* start = node(initiator);
  if (start == nullptr) {
    return Status::NotFound("no node named '" + initiator + "'");
  }
  CODB_ASSIGN_OR_RETURN(FlowId update, start->StartGlobalUpdate());
  network_->Run();
  return update;
}

Result<FlowId> Testbed::RunGlobalRefresh(const std::string& initiator) {
  Node* start = node(initiator);
  if (start == nullptr) {
    return Status::NotFound("no node named '" + initiator + "'");
  }
  CODB_ASSIGN_OR_RETURN(FlowId update, start->StartGlobalRefresh());
  network_->Run();
  return update;
}

Result<FlowId> Testbed::RunIncrementalUpdate(const std::string& initiator) {
  Node* start = node(initiator);
  if (start == nullptr) {
    return Status::NotFound("no node named '" + initiator + "'");
  }
  CODB_ASSIGN_OR_RETURN(FlowId update, start->StartIncrementalUpdate());
  network_->Run();
  return update;
}

bool Testbed::AllComplete(const FlowId& update) const {
  for (const auto& node : nodes_) {
    const UpdateManager* manager = node->update_manager();
    if (manager == nullptr) return false;
    if (manager->IsJoined(update) && !manager->IsComplete(update)) {
      return false;
    }
  }
  return true;
}

NetworkInstance Testbed::Snapshot() const {
  NetworkInstance out;
  for (const auto& node : nodes_) {
    out.emplace(node->name(), node->database().Snapshot());
  }
  return out;
}

Status Testbed::SetFault(const std::string& a, const std::string& b,
                         const FaultProfile& fault) {
  Node* node_a = node(a);
  Node* node_b = node(b);
  if (node_a == nullptr || node_b == nullptr) {
    return Status::NotFound("no node named '" +
                            (node_a == nullptr ? a : b) + "'");
  }
  return network_->SetFaultProfile(node_a->id(), node_b->id(), fault);
}

Status Testbed::CollectStats() {
  for (auto& super : super_peers_) {
    CODB_RETURN_IF_ERROR(super->RequestStats());
  }
  network_->Run();
  for (auto& super : super_peers_) {
    if (!super->CollectionComplete()) {
      return Status::Unavailable("some nodes did not report statistics to " +
                                 super->name());
    }
  }
  if (super_peers_.size() > 1) {
    for (auto& super : super_peers_) {
      CODB_RETURN_IF_ERROR(super->ShareWithFederation());
    }
    network_->Run();
    for (auto& super : super_peers_) {
      if (!super->FederationComplete()) {
        return Status::Unavailable("federation reports missing at " +
                                   super->name());
      }
    }
  }
  return Status::Ok();
}

}  // namespace codb
