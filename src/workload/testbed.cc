#include "workload/testbed.h"

namespace codb {

Result<std::unique_ptr<Testbed>> Testbed::Create(
    const GeneratedNetwork& generated, Options options) {
  auto testbed = std::unique_ptr<Testbed>(new Testbed());
  if (options.threaded) {
    testbed->network_ = std::make_unique<ThreadedNetwork>();
  } else {
    testbed->network_ = std::make_unique<Network>();
  }

  for (const NodeDecl& decl : generated.config.nodes()) {
    DatabaseSchema schema;
    for (const RelationSchema& rel : decl.relations) {
      CODB_RETURN_IF_ERROR(schema.AddRelation(rel));
    }
    CODB_ASSIGN_OR_RETURN(
        std::unique_ptr<Node> node,
        Node::Create(testbed->network_.get(), decl.name,
                     std::move(schema), decl.mediator, options.node));

    auto seed = generated.seeds.find(decl.name);
    if (seed != generated.seeds.end()) {
      for (const auto& [relation, tuples] : seed->second) {
        CODB_ASSIGN_OR_RETURN(Relation * r,
                              node->database().Get(relation));
        for (const Tuple& tuple : tuples) r->Insert(tuple);
      }
    }
    testbed->by_name_.emplace(decl.name, node.get());
    testbed->nodes_.push_back(std::move(node));
  }

  testbed->super_peer_ = SuperPeer::Create(testbed->network_.get());
  CODB_RETURN_IF_ERROR(
      testbed->super_peer_->LoadConfig(generated.config));
  CODB_RETURN_IF_ERROR(testbed->super_peer_->BroadcastConfig());
  testbed->network_->Run(options.settle_event_cap);

  for (const auto& node : testbed->nodes_) {
    if (!node->has_config()) {
      return Status::Internal("node '" + node->name() +
                              "' did not receive the configuration");
    }
  }
  return testbed;
}

Node* Testbed::node(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Result<FlowId> Testbed::RunGlobalUpdate(const std::string& initiator) {
  Node* start = node(initiator);
  if (start == nullptr) {
    return Status::NotFound("no node named '" + initiator + "'");
  }
  CODB_ASSIGN_OR_RETURN(FlowId update, start->StartGlobalUpdate());
  network_->Run();
  return update;
}

bool Testbed::AllComplete(const FlowId& update) const {
  for (const auto& node : nodes_) {
    const UpdateManager* manager = node->update_manager();
    if (manager == nullptr) return false;
    if (manager->IsJoined(update) && !manager->IsComplete(update)) {
      return false;
    }
  }
  return true;
}

NetworkInstance Testbed::Snapshot() const {
  NetworkInstance out;
  for (const auto& node : nodes_) {
    out.emplace(node->name(), node->database().Snapshot());
  }
  return out;
}

Status Testbed::CollectStats() {
  CODB_RETURN_IF_ERROR(super_peer_->RequestStats());
  network_->Run();
  if (!super_peer_->CollectionComplete()) {
    return Status::Unavailable("some nodes did not report statistics");
  }
  return Status::Ok();
}

}  // namespace codb
