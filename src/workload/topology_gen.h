// Workload generators for the demo's experiment suite: network topologies
// (chain, ring, star, tree, grid, random), GLAV rule styles, and seeded
// per-node data.
//
// Every node gets the same two-relation schema
//
//     d(k:int, v:int)      — primary data
//     e(k:int, w:int)      — secondary, used by join-style rules
//
// and a seeded instance whose keys are disjoint across nodes (node i owns
// keys [i*10000, i*10000+tuples)), so every propagated tuple has a unique
// derivation — which is what lets tests assert exact agreement with the
// path-bounded oracle.

#ifndef CODB_WORKLOAD_TOPOLOGY_GEN_H_
#define CODB_WORKLOAD_TOPOLOGY_GEN_H_

#include <string>

#include "core/config.h"
#include "core/oracle.h"
#include "util/random.h"

namespace codb {

// What a generated coordination rule looks like.
enum class RuleStyle {
  kCopy,       // d(K,V) :- d(K,V).                 GAV copy
  kProject,    // d(K,Z) :- d(K,V).                 GLAV: Z existential
  kJoin,       // d(K,W) :- d(K,V), e(K,W).         body join
  kFilter,     // d(K,V) :- d(K,V), V < threshold.  comparison predicate
  kMultiHead,  // d(K,Z), e(K,Z) :- d(K,V).        multi-atom GLAV head
               // (one shared witness per firing)
  kJoinCopy,   // d(K,W), e(K,W) :- d(K,V), e(K,W). join body whose head
               // writes *both* body relations at the importer, so every
               // delta batch re-probes a relation that was just inserted
               // into — the insert→probe fixpoint pattern that stresses
               // index maintenance.
};

struct WorkloadOptions {
  int nodes = 8;
  int tuples_per_node = 20;
  uint64_t seed = 42;
  RuleStyle style = RuleStyle::kCopy;
  int value_range = 100;      // v/w drawn from [0, value_range)
  int filter_threshold = 50;  // kFilter: V < threshold
  int tree_fanout = 2;
  int grid_rows = 3;
  int grid_cols = 3;          // grid ignores `nodes`
  double edge_probability = 0.3;  // random graphs
  int mediator_every = 0;     // >0: every k-th node is a mediator
};

struct GeneratedNetwork {
  NetworkConfig config;
  NetworkInstance seeds;  // node name -> relation -> tuples
};

// Chain: n0 <- n1 <- ... <- n{k-1}; data converges on n0.
GeneratedNetwork MakeChain(const WorkloadOptions& options);

// Directed ring: n_i imports from n_{(i+1) mod k}; the rule set is cyclic.
GeneratedNetwork MakeRing(const WorkloadOptions& options);

// Star: n0 (the hub) imports from every other node.
GeneratedNetwork MakeStar(const WorkloadOptions& options);

// Balanced tree with the given fanout; parents import from children.
GeneratedNetwork MakeTree(const WorkloadOptions& options);

// rows x cols grid; node (r,c) imports from (r+1,c) and (r,c+1).
GeneratedNetwork MakeGrid(const WorkloadOptions& options);

// Erdős–Rényi: each unordered pair gets a rule with edge_probability, in a
// uniformly random direction.
GeneratedNetwork MakeRandom(const WorkloadOptions& options);

// A heterogeneous data-integration scenario (the setting the paper's
// introduction motivates): `sources` source nodes with *different* local
// schemas, a registry node integrating them, and optionally a mediator
// between every second source and the registry. The GLAV mappings mix all
// four rule shapes: renamings, projections with existential witnesses,
// joins, and comparison filters.
//
//   source_0:  people(pid, name, age)        -> registry.person (filter)
//   source_1:  emp(eid, dept), dept_name(dept, dname)
//                                            -> registry.person (join)
//   source_2:  clients(cid)                  -> registry.person (project:
//                                               name witnessed by a null)
//   ... repeating in round-robin for more sources.
//
// Every source also exports into registry.origin(id, src) with a constant
// marking its index, so tests can attribute tuples.
GeneratedNetwork MakeIntegration(const WorkloadOptions& options,
                                 int sources, bool with_mediators);

// The per-node schema used by all generators.
DatabaseSchema StandardSchema();

// Name of node `index` ("n<index>").
std::string NodeName(int index);

}  // namespace codb

#endif  // CODB_WORKLOAD_TOPOLOGY_GEN_H_
