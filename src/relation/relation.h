// Set-semantics relation instances.
//
// The global-update algorithm repeatedly computes T' = T \ R ("we first
// remove from T those tuples which are already in R") and R += T', so the
// relation offers exactly those primitives plus scans and a hash index used
// by the join evaluator.

#ifndef CODB_RELATION_RELATION_H_
#define CODB_RELATION_RELATION_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"
#include "util/status.h"

namespace codb {

class Relation {
 public:
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  int arity() const { return schema_.arity(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  bool Contains(const Tuple& tuple) const {
    return index_.find(tuple) != index_.end();
  }

  // Inserts if absent; returns true if the tuple was new. Arity-checked.
  bool Insert(const Tuple& tuple);

  // Inserts a batch and returns the sub-batch that was actually new — the
  // T' = T \ R step of the paper, fused with R += T'.
  std::vector<Tuple> InsertNew(const std::vector<Tuple>& batch);

  // The tuples of `batch` not present in this relation (pure set diff; does
  // not modify the relation).
  std::vector<Tuple> Difference(const std::vector<Tuple>& batch) const;

  // Ordered scan access. Insertion order; deterministic given a
  // deterministic caller.
  const std::vector<Tuple>& rows() const { return rows_; }

  void Clear();

  // Tuples whose column `column` equals `key`. The per-column hash index is
  // built lazily on first probe and invalidated on insert.
  const std::vector<const Tuple*>& Probe(int column, const Value& key) const;

  // Total wire size of all rows (for volume statistics).
  size_t WireSize() const;

  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> index_;

  // Lazy per-column indexes: column -> (value -> tuples).
  struct ColumnIndex {
    bool built = false;
    std::unordered_map<Value, std::vector<const Tuple*>, ValueHash> buckets;
  };
  mutable std::vector<ColumnIndex> column_indexes_;
  static const std::vector<const Tuple*> kEmptyBucket;

  void InvalidateIndexes();
};

}  // namespace codb

#endif  // CODB_RELATION_RELATION_H_
