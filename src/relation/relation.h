// Set-semantics relation instances.
//
// The global-update algorithm repeatedly computes T' = T \ R ("we first
// remove from T those tuples which are already in R") and R += T', so the
// relation offers exactly those primitives plus scans and hash indexes used
// by the join evaluator.
//
// Index lifecycle: per-column and composite (multi-column) hash indexes are
// built lazily on first probe and then maintained *incrementally* — every
// subsequent insert appends the new row to each built index in O(arity).
// Indexes are never invalidated or rebuilt; Clear resets them. Buckets hold
// stable row positions into rows() rather than pointers, so growth of the
// backing vector can never dangle a bucket entry.

#ifndef CODB_RELATION_RELATION_H_
#define CODB_RELATION_RELATION_H_

#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"
#include "util/status.h"

namespace codb {

class Relation {
 public:
  // Positions into rows() of the tuples matching a probe.
  using RowIndexList = std::vector<uint32_t>;

  explicit Relation(RelationSchema schema)
      : schema_(std::move(schema)),
        index_(0, RowRefHash{&rows_}, RowRefEq{&rows_}) {}

  // The dedup index hashes row positions through rows_, so the object must
  // stay put (Database owns relations behind unique_ptr).
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = delete;
  Relation& operator=(Relation&&) = delete;

  const RelationSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name(); }
  int arity() const { return schema_.arity(); }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  bool Contains(const Tuple& tuple) const {
    // Heterogeneous (C++20) lookup: hashes/compares the probe tuple against
    // stored row positions without materializing a key copy.
    return index_.find(tuple) != index_.end();
  }

  // Inserts if absent; returns true if the tuple was new. Arity-checked.
  bool Insert(const Tuple& tuple);

  // Inserts a batch and returns the sub-batch that was actually new — the
  // T' = T \ R step of the paper, fused with R += T'.
  std::vector<Tuple> InsertNew(const std::vector<Tuple>& batch);

  // Pre-sizes row storage, the dedup set, and any built column indexes for
  // `n` total rows, so a known-size insert burst avoids incremental
  // rehashing. A no-op when already at least that large.
  void Reserve(size_t n);

  // The tuples of `batch` not present in this relation (pure set diff; does
  // not modify the relation).
  std::vector<Tuple> Difference(const std::vector<Tuple>& batch) const;

  // Ordered scan access. Insertion order; deterministic given a
  // deterministic caller.
  const std::vector<Tuple>& rows() const { return rows_; }

  void Clear();

  // Positions of the tuples whose column `column` equals `key`. The
  // per-column hash index is built lazily on first probe and appended to on
  // every later insert; the result stays valid until Clear, but take a copy
  // before inserting if iterating across modifications.
  const RowIndexList& Probe(int column, const Value& key) const;

  // Positions of the tuples matching `keys[i]` on `columns[i]` for every i.
  // `columns` must be strictly ascending and non-empty. Backed by a lazily
  // created composite hash index on that column set, maintained
  // incrementally like the single-column ones.
  const RowIndexList& ProbeComposite(const std::vector<int>& columns,
                                     const std::vector<Value>& keys) const;

  // Force the lazy index build eagerly, so later Probe/ProbeComposite
  // calls on that column set are pure reads. The parallel evaluator
  // pre-builds every index its plan will touch *before* worker threads
  // start probing; without this, two workers could race the first-probe
  // build (see the concurrency note on column_indexes_ below).
  void EnsureColumnIndex(int column) const;
  void EnsureCompositeIndex(const std::vector<int>& columns) const;

  // Total wire size of all rows (for volume statistics).
  size_t WireSize() const;

  std::string ToString() const;

 private:
  struct ColumnIndex {
    bool built = false;
    std::unordered_map<Value, RowIndexList, ValueHash> buckets;
  };
  struct CompositeIndex {
    std::unordered_map<Tuple, RowIndexList, TupleHash> buckets;
  };

  // The dedup set stores row positions, not tuple copies: an element hashes
  // and compares as the tuple it denotes in *rows. `is_transparent` lets a
  // probe Tuple be looked up directly against stored positions.
  struct RowRefHash {
    const std::vector<Tuple>* rows;
    using is_transparent = void;
    size_t operator()(uint32_t row) const { return (*rows)[row].Hash(); }
    size_t operator()(const Tuple& t) const { return t.Hash(); }
  };
  struct RowRefEq {
    const std::vector<Tuple>* rows;
    using is_transparent = void;
    bool operator()(uint32_t a, uint32_t b) const {
      return a == b || (*rows)[a] == (*rows)[b];
    }
    bool operator()(uint32_t a, const Tuple& t) const {
      return (*rows)[a] == t;
    }
    bool operator()(const Tuple& t, uint32_t a) const {
      return (*rows)[a] == t;
    }
  };

  // Adds row `row` (== its position in rows_) to every built index.
  void AppendToIndexes(const Tuple& tuple, uint32_t row) const;

  // Build-if-absent returning the index, so ProbeComposite pays a single
  // map lookup.
  CompositeIndex& EnsureCompositeIndexImpl(
      const std::vector<int>& columns) const;

  static Tuple ProjectColumns(const Tuple& tuple,
                              const std::vector<int>& columns);

  RelationSchema schema_;
  std::vector<Tuple> rows_;
  std::unordered_set<uint32_t, RowRefHash, RowRefEq> index_;

  // Lazily built, incrementally maintained probe indexes. Mutable because
  // probing is logically const. Not internally locked: mutation (inserts,
  // first-probe builds) happens either on the peer's single event thread
  // or under the owning Wrapper's store lock; parallel evaluator workers
  // only probe indexes pre-built via Ensure*Index (DESIGN.md §10).
  mutable std::vector<ColumnIndex> column_indexes_;
  mutable std::map<std::vector<int>, CompositeIndex> composite_indexes_;
  static const RowIndexList kEmptyBucket;
};

}  // namespace codb

#endif  // CODB_RELATION_RELATION_H_
