#include "relation/printer.h"

#include <algorithm>

namespace codb {

namespace {

std::string Rule(const std::vector<size_t>& widths) {
  std::string out = "+";
  for (size_t w : widths) {
    out.append(w + 2, '-');
    out += "+";
  }
  out += "\n";
  return out;
}

std::string Row(const std::vector<std::string>& cells,
                const std::vector<size_t>& widths) {
  std::string out = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    out += " " + cells[i];
    out.append(widths[i] - cells[i].size() + 1, ' ');
    out += "|";
  }
  out += "\n";
  return out;
}

}  // namespace

std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<Tuple>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t i = 0; i < header.size(); ++i) widths[i] = header[i].size();

  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::vector<std::string> row;
    row.reserve(header.size());
    for (int i = 0; i < t.arity(); ++i) {
      std::string s = t.at(i).ToString();
      size_t col = static_cast<size_t>(i);
      if (col < widths.size()) widths[col] = std::max(widths[col], s.size());
      row.push_back(std::move(s));
    }
    cells.push_back(std::move(row));
  }

  std::string out = Rule(widths);
  out += Row(header, widths);
  out += Rule(widths);
  for (const auto& row : cells) out += Row(row, widths);
  out += Rule(widths);
  return out;
}

std::string FormatRelation(const Relation& relation) {
  std::vector<std::string> header;
  for (const Attribute& a : relation.schema().attributes()) {
    header.push_back(a.name);
  }
  return relation.schema().name() + "\n" +
         FormatTable(header, relation.rows());
}

}  // namespace codb
