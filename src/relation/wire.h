// Binary serialization for message payloads.
//
// Little-endian fixed-width integers, length-prefixed strings, and typed
// values/tuples. Reads are bounds-checked and report kParseError instead of
// crashing on truncated or corrupt input, so a malformed message cannot
// take a peer down.

#ifndef CODB_RELATION_WIRE_H_
#define CODB_RELATION_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/tuple.h"
#include "relation/value.h"
#include "util/status.h"

namespace codb {

class WireWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteValue(const Value& v);
  void WriteTuple(const Tuple& t);
  void WriteTuples(const std::vector<Tuple>& tuples);
  void WriteStringList(const std::vector<std::string>& strings);
  void WriteU32List(const std::vector<uint32_t>& values);

  std::vector<uint8_t> Take() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Value> ReadValue();
  Result<Tuple> ReadTuple();
  Result<std::vector<Tuple>> ReadTuples();
  Result<std::vector<std::string>> ReadStringList();
  Result<std::vector<uint32_t>> ReadU32List();

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  // Bounds check, inline so the per-field happy path is a compare; the
  // error message is built out of line.
  Status Need(size_t n) {
    if (size_ - pos_ >= n) return Status::Ok();
    return Truncated(n);
  }
  Status Truncated(size_t n) const;

  // Unchecked little-endian loads for hot paths that have already passed a
  // Need() covering the bytes. The shift form is endian-independent; the
  // compiler fuses it into a single load on little-endian targets.
  uint8_t TakeU8() { return data_[pos_++]; }
  uint16_t TakeU16() {
    uint16_t v = static_cast<uint16_t>(
        static_cast<uint16_t>(data_[pos_]) |
        static_cast<uint16_t>(data_[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
  }
  uint32_t TakeU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  uint64_t TakeU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace codb

#endif  // CODB_RELATION_WIRE_H_
