#include "relation/wire.h"

#include <cstring>

namespace codb {

void WireWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void WireWriter::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::WriteU32(uint32_t v) {
  // Staged through a local array so the vector grows (and bounds-checks)
  // once per value instead of once per byte.
  uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<uint8_t>(v >> (8 * i));
  buffer_.insert(buffer_.end(), bytes, bytes + 4);
}

void WireWriter::WriteU64(uint64_t v) {
  uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<uint8_t>(v >> (8 * i));
  buffer_.insert(buffer_.end(), bytes, bytes + 8);
}

void WireWriter::WriteI64(int64_t v) {
  WriteU64(static_cast<uint64_t>(v));
}

void WireWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void WireWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void WireWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      WriteI64(v.AsInt());
      break;
    case ValueType::kDouble:
      WriteDouble(v.AsDouble());
      break;
    case ValueType::kString:
      WriteString(v.AsString());
      break;
    case ValueType::kNull:
      WriteU32(v.AsNull().peer);
      WriteU64(v.AsNull().counter);
      break;
  }
}

void WireWriter::WriteTuple(const Tuple& t) {
  WriteU16(static_cast<uint16_t>(t.arity()));
  for (const Value& v : t) WriteValue(v);
}

void WireWriter::WriteTuples(const std::vector<Tuple>& tuples) {
  WriteU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) WriteTuple(t);
}

void WireWriter::WriteStringList(const std::vector<std::string>& strings) {
  WriteU32(static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) WriteString(s);
}

void WireWriter::WriteU32List(const std::vector<uint32_t>& values) {
  WriteU32(static_cast<uint32_t>(values.size()));
  for (uint32_t v : values) WriteU32(v);
}

Status WireReader::Truncated(size_t n) const {
  return Status::ParseError("wire: truncated input (need " +
                            std::to_string(n) + " bytes, have " +
                            std::to_string(size_ - pos_) + ")");
}

Result<uint8_t> WireReader::ReadU8() {
  CODB_RETURN_IF_ERROR(Need(1));
  return TakeU8();
}

Result<uint16_t> WireReader::ReadU16() {
  CODB_RETURN_IF_ERROR(Need(2));
  return TakeU16();
}

Result<uint32_t> WireReader::ReadU32() {
  CODB_RETURN_IF_ERROR(Need(4));
  return TakeU32();
}

Result<uint64_t> WireReader::ReadU64() {
  CODB_RETURN_IF_ERROR(Need(8));
  return TakeU64();
}

Result<int64_t> WireReader::ReadI64() {
  CODB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  return static_cast<int64_t>(bits);
}

Result<double> WireReader::ReadDouble() {
  CODB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> WireReader::ReadString() {
  CODB_RETURN_IF_ERROR(Need(4));
  uint32_t length = TakeU32();
  CODB_RETURN_IF_ERROR(Need(length));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return s;
}

Result<Value> WireReader::ReadValue() {
  // One bounds check per payload instead of one per nested fixed-width
  // read; this is the deserialization hot loop for update data messages.
  CODB_RETURN_IF_ERROR(Need(1));
  uint8_t tag = TakeU8();
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt: {
      CODB_RETURN_IF_ERROR(Need(8));
      return Value::Int(static_cast<int64_t>(TakeU64()));
    }
    case ValueType::kDouble: {
      CODB_RETURN_IF_ERROR(Need(8));
      uint64_t bits = TakeU64();
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Double(d);
    }
    case ValueType::kString: {
      // Interned straight from the wire buffer — no std::string detour.
      CODB_RETURN_IF_ERROR(Need(4));
      uint32_t length = TakeU32();
      CODB_RETURN_IF_ERROR(Need(length));
      std::string_view view(reinterpret_cast<const char*>(data_ + pos_),
                            length);
      pos_ += length;
      return Value::String(view);
    }
    case ValueType::kNull: {
      CODB_RETURN_IF_ERROR(Need(12));
      uint32_t peer = TakeU32();
      uint64_t counter = TakeU64();
      return Value::Null(peer, counter);
    }
  }
  return Status::ParseError("wire: unknown value tag " + std::to_string(tag));
}

Result<Tuple> WireReader::ReadTuple() {
  CODB_RETURN_IF_ERROR(Need(2));
  uint16_t arity = TakeU16();
  if (arity <= Tuple::kInlineCapacity) {
    // Common case: decode straight into a stack buffer so the tuple is
    // built without touching the heap.
    Value values[Tuple::kInlineCapacity];
    for (uint16_t i = 0; i < arity; ++i) {
      CODB_ASSIGN_OR_RETURN(values[i], ReadValue());
    }
    return Tuple(values, arity);
  }
  std::vector<Value> values;
  values.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    CODB_ASSIGN_OR_RETURN(Value v, ReadValue());
    values.push_back(std::move(v));
  }
  return Tuple(values);
}

Result<std::vector<Tuple>> WireReader::ReadTuples() {
  CODB_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(Tuple t, ReadTuple());
    tuples.push_back(std::move(t));
  }
  return tuples;
}

Result<std::vector<std::string>> WireReader::ReadStringList() {
  CODB_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
  std::vector<std::string> strings;
  strings.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(std::string s, ReadString());
    strings.push_back(std::move(s));
  }
  return strings;
}

Result<std::vector<uint32_t>> WireReader::ReadU32List() {
  CODB_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
  std::vector<uint32_t> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
    values.push_back(v);
  }
  return values;
}

}  // namespace codb
