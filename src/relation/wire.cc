#include "relation/wire.h"

#include <cstring>

namespace codb {

void WireWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void WireWriter::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::WriteI64(int64_t v) {
  WriteU64(static_cast<uint64_t>(v));
}

void WireWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void WireWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void WireWriter::WriteValue(const Value& v) {
  WriteU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kInt:
      WriteI64(v.AsInt());
      break;
    case ValueType::kDouble:
      WriteDouble(v.AsDouble());
      break;
    case ValueType::kString:
      WriteString(v.AsString());
      break;
    case ValueType::kNull:
      WriteU32(v.AsNull().peer);
      WriteU64(v.AsNull().counter);
      break;
  }
}

void WireWriter::WriteTuple(const Tuple& t) {
  WriteU16(static_cast<uint16_t>(t.arity()));
  for (const Value& v : t.values()) WriteValue(v);
}

void WireWriter::WriteTuples(const std::vector<Tuple>& tuples) {
  WriteU32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) WriteTuple(t);
}

void WireWriter::WriteStringList(const std::vector<std::string>& strings) {
  WriteU32(static_cast<uint32_t>(strings.size()));
  for (const std::string& s : strings) WriteString(s);
}

void WireWriter::WriteU32List(const std::vector<uint32_t>& values) {
  WriteU32(static_cast<uint32_t>(values.size()));
  for (uint32_t v : values) WriteU32(v);
}

Status WireReader::Need(size_t n) {
  if (size_ - pos_ < n) {
    return Status::ParseError("wire: truncated input (need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(size_ - pos_) + ")");
  }
  return Status::Ok();
}

Result<uint8_t> WireReader::ReadU8() {
  CODB_RETURN_IF_ERROR(Need(1));
  return data_[pos_++];
}

Result<uint16_t> WireReader::ReadU16() {
  CODB_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::ReadU32() {
  CODB_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::ReadU64() {
  CODB_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> WireReader::ReadI64() {
  CODB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  return static_cast<int64_t>(bits);
}

Result<double> WireReader::ReadDouble() {
  CODB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

Result<std::string> WireReader::ReadString() {
  CODB_ASSIGN_OR_RETURN(uint32_t length, ReadU32());
  CODB_RETURN_IF_ERROR(Need(length));
  std::string s(reinterpret_cast<const char*>(data_ + pos_), length);
  pos_ += length;
  return s;
}

Result<Value> WireReader::ReadValue() {
  CODB_ASSIGN_OR_RETURN(uint8_t tag, ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kInt: {
      CODB_ASSIGN_OR_RETURN(int64_t v, ReadI64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      CODB_ASSIGN_OR_RETURN(double v, ReadDouble());
      return Value::Double(v);
    }
    case ValueType::kString: {
      CODB_ASSIGN_OR_RETURN(std::string v, ReadString());
      return Value::String(std::move(v));
    }
    case ValueType::kNull: {
      CODB_ASSIGN_OR_RETURN(uint32_t peer, ReadU32());
      CODB_ASSIGN_OR_RETURN(uint64_t counter, ReadU64());
      return Value::Null(peer, counter);
    }
  }
  return Status::ParseError("wire: unknown value tag " + std::to_string(tag));
}

Result<Tuple> WireReader::ReadTuple() {
  CODB_ASSIGN_OR_RETURN(uint16_t arity, ReadU16());
  std::vector<Value> values;
  values.reserve(arity);
  for (uint16_t i = 0; i < arity; ++i) {
    CODB_ASSIGN_OR_RETURN(Value v, ReadValue());
    values.push_back(std::move(v));
  }
  return Tuple(std::move(values));
}

Result<std::vector<Tuple>> WireReader::ReadTuples() {
  CODB_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(Tuple t, ReadTuple());
    tuples.push_back(std::move(t));
  }
  return tuples;
}

Result<std::vector<std::string>> WireReader::ReadStringList() {
  CODB_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
  std::vector<std::string> strings;
  strings.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(std::string s, ReadString());
    strings.push_back(std::move(s));
  }
  return strings;
}

Result<std::vector<uint32_t>> WireReader::ReadU32List() {
  CODB_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
  std::vector<uint32_t> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
    values.push_back(v);
  }
  return values;
}

}  // namespace codb
