// Process-wide string interning for Value payloads.
//
// Every distinct string a Value ever holds is stored exactly once in a
// global dictionary and identified by a dense 32-bit symbol id. Values then
// compare and hash strings as integer ids, which turns the join evaluator's
// hot equality path into a single integer compare and shrinks Value to a
// trivially-copyable tag + 8-byte payload.
//
// The dictionary is append-only: symbols are never freed, and the backing
// std::deque never relocates a stored string, so `Lookup` can hand out
// `const std::string&` that stays valid for the process lifetime. The
// interner is shared by every simulated peer in one process, so unlike the
// per-node lazy caches it must be thread-safe under ThreadedNetwork: a
// shared_mutex makes lookups concurrent and interning exclusive.

#ifndef CODB_RELATION_INTERN_H_
#define CODB_RELATION_INTERN_H_

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace codb {

class StringInterner {
 public:
  // The process-wide dictionary used by Value. Leaked on purpose so that
  // Values in static storage can still resolve their symbols at shutdown.
  static StringInterner& Global();

  // Returns the symbol for `s`, adding it to the dictionary if new.
  uint32_t Intern(std::string_view s);

  // The string behind a symbol previously returned by Intern. The reference
  // is stable: entries are never moved or removed.
  const std::string& Lookup(uint32_t symbol) const;

  size_t size() const;

 private:
  StringInterner() = default;

  mutable std::shared_mutex mu_;
  // Views in ids_ point into strings_; deque growth never invalidates them.
  std::unordered_map<std::string_view, uint32_t> ids_;
  std::deque<std::string> strings_;
};

}  // namespace codb

#endif  // CODB_RELATION_INTERN_H_
