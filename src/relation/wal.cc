#include "relation/wal.h"

#include <cstdio>

#include "relation/wire.h"

namespace codb {

void WriteAheadLog::LogInsert(const std::string& relation,
                              const Tuple& tuple) {
  entries_.push_back({relation, tuple});
}

Status WriteAheadLog::ReplayInto(Database& db) const {
  for (const Entry& entry : entries_) {
    CODB_ASSIGN_OR_RETURN(Relation * relation, db.Get(entry.relation));
    relation->Insert(entry.tuple);
  }
  return Status::Ok();
}

std::vector<uint8_t> WriteAheadLog::Serialize() const {
  WireWriter writer;
  writer.WriteU32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    writer.WriteString(entry.relation);
    writer.WriteTuple(entry.tuple);
  }
  return writer.Take();
}

Result<WriteAheadLog> WriteAheadLog::Deserialize(
    const std::vector<uint8_t>& bytes) {
  WireReader reader(bytes);
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  WriteAheadLog wal;
  wal.entries_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry entry;
    CODB_ASSIGN_OR_RETURN(entry.relation, reader.ReadString());
    CODB_ASSIGN_OR_RETURN(entry.tuple, reader.ReadTuple());
    wal.entries_.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("journal has trailing bytes");
  }
  return wal;
}

Status WriteAheadLog::SaveToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot open '" + path + "' for writing");
  }
  std::vector<uint8_t> bytes = Serialize();
  size_t written = bytes.empty()
                       ? 0
                       : std::fwrite(bytes.data(), 1, bytes.size(), file);
  bool flushed = std::fclose(file) == 0;
  if (written != bytes.size() || !flushed) {
    return Status::Unavailable("short write to '" + path + "'");
  }
  return Status::Ok();
}

Result<WriteAheadLog> WriteAheadLog::LoadFromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + read);
  }
  std::fclose(file);
  return Deserialize(bytes);
}

}  // namespace codb
