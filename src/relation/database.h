// Catalog of relations: the in-memory stand-in for the node's local
// database (LDB). See DESIGN.md §1 for the substitution rationale.

#ifndef CODB_RELATION_DATABASE_H_
#define CODB_RELATION_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relation/relation.h"
#include "relation/schema.h"
#include "util/status.h"

namespace codb {

class Database {
 public:
  Database() = default;

  // Databases own their relations and are not copyable; use Snapshot() to
  // capture state for later comparison.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  Status CreateRelation(RelationSchema schema);

  Relation* Find(const std::string& name);
  const Relation* Find(const std::string& name) const;

  // Lookup that reports an error instead of returning nullptr.
  Result<Relation*> Get(const std::string& name);

  std::vector<std::string> RelationNames() const;

  // Schema of every relation (the full catalog; the exported subset is the
  // wrapper's DbsRepository concern).
  DatabaseSchema Schema() const;

  // Total number of tuples across relations.
  size_t TotalTuples() const;

  // Deep copy of all contents, keyed by relation name.
  std::map<std::string, std::vector<Tuple>> Snapshot() const;

  // Restores a snapshot taken from a database with the same schema.
  Status Restore(const std::map<std::string, std::vector<Tuple>>& snapshot);

  std::string ToString() const;

 private:
  // std::map for deterministic iteration order in dumps and the oracle.
  std::map<std::string, std::unique_ptr<Relation>> relations_;
};

}  // namespace codb

#endif  // CODB_RELATION_DATABASE_H_
