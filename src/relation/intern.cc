#include "relation/intern.h"

#include <cassert>
#include <mutex>

namespace codb {

StringInterner& StringInterner::Global() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

uint32_t StringInterner::Intern(std::string_view s) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = ids_.find(s);  // re-check: another thread may have raced us here
  if (it != ids_.end()) return it->second;
  uint32_t symbol = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  ids_.emplace(std::string_view(strings_.back()), symbol);
  return symbol;
}

const std::string& StringInterner::Lookup(uint32_t symbol) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  assert(symbol < strings_.size() && "unknown interned symbol");
  // Safe to return after unlocking: entries are append-only and a deque
  // never relocates existing elements.
  return strings_[symbol];
}

size_t StringInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return strings_.size();
}

}  // namespace codb
