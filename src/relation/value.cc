#include "relation/value.h"

#include <cassert>

#include "util/string_util.h"

namespace codb {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kNull:
      return "null";
  }
  return "unknown";
}

bool operator<(const Value& a, const Value& b) {
  if (a.type_ != b.type_) {
    return static_cast<int>(a.type_) < static_cast<int>(b.type_);
  }
  switch (a.type_) {
    case ValueType::kInt:
      return a.payload_.i < b.payload_.i;
    case ValueType::kDouble:
      return a.payload_.d < b.payload_.d;
    case ValueType::kString:
      // Equal symbols are the common case in sorted frontier batches; skip
      // the dictionary round-trip for them.
      if (a.payload_.symbol == b.payload_.symbol) return false;
      return a.AsString() < b.AsString();
    case ValueType::kNull:
      return a.payload_.null < b.payload_.null;
  }
  return false;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case ValueType::kDouble:
      return StrFormat("%g", AsDouble());
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kNull: {
      const NullLabel& label = AsNull();
      return StrFormat("#%u:%llu", label.peer,
                       static_cast<unsigned long long>(label.counter));
    }
  }
  return "?";
}

size_t Value::WireSize() const {
  switch (type_) {
    case ValueType::kInt:
      return 1 + 8;
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 4 + AsString().size();
    case ValueType::kNull:
      return 1 + 4 + 8;
  }
  return 1;
}

}  // namespace codb
