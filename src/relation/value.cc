#include "relation/value.h"

#include "util/string_util.h"

namespace codb {

namespace {

// 64-bit mix for combining hashes (from MurmurHash3 finalizer).
size_t MixHash(size_t h) {
  uint64_t x = h;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<size_t>(x);
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kNull:
      return "null";
  }
  return "unknown";
}

size_t Value::Hash() const {
  size_t type_salt = static_cast<size_t>(type()) * 0x9e3779b97f4a7c15ULL;
  switch (type()) {
    case ValueType::kInt:
      return MixHash(type_salt ^ static_cast<size_t>(AsInt()));
    case ValueType::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixHash(type_salt ^ static_cast<size_t>(bits));
    }
    case ValueType::kString:
      return MixHash(type_salt ^ std::hash<std::string>()(AsString()));
    case ValueType::kNull: {
      const NullLabel& label = AsNull();
      return MixHash(type_salt ^ (static_cast<size_t>(label.peer) << 48) ^
                     static_cast<size_t>(label.counter));
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case ValueType::kDouble:
      return StrFormat("%g", AsDouble());
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kNull: {
      const NullLabel& label = AsNull();
      return StrFormat("#%u:%llu", label.peer,
                       static_cast<unsigned long long>(label.counter));
    }
  }
  return "?";
}

size_t Value::WireSize() const {
  switch (type()) {
    case ValueType::kInt:
      return 1 + 8;
    case ValueType::kDouble:
      return 1 + 8;
    case ValueType::kString:
      return 1 + 4 + AsString().size();
    case ValueType::kNull:
      return 1 + 4 + 8;
  }
  return 1;
}

}  // namespace codb
