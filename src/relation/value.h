// Typed values, including marked nulls.
//
// coDB propagates data through GLAV rules whose heads may contain
// existentially quantified variables; those are instantiated with *marked
// nulls* (labelled Skolem constants, written ⊥_{peer:counter}). Marked nulls
// are ordinary first-class values: they can be stored, joined on, and
// propagated further, and two marked nulls are equal iff their labels are
// equal (identity of the witness, per the paper's "fresh new marked null
// values" in section 3).
//
// Representation: a type tag plus an 8-byte trivially-copyable payload.
// Strings are held as interned symbol ids (see relation/intern.h), so
// copying a Value never allocates and string equality/hashing are integer
// operations. The interned representation is in-memory only: wire and WAL
// encoders resolve symbols back to their characters at the boundary, so
// on-disk and on-wire bytes are unchanged.

#ifndef CODB_RELATION_VALUE_H_
#define CODB_RELATION_VALUE_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "relation/intern.h"

namespace codb {

enum class ValueType {
  kInt = 0,
  kDouble = 1,
  kString = 2,
  kNull = 3,  // marked null
};

const char* ValueTypeName(ValueType type);

// Label of a marked null: (minting peer, per-peer counter). Globally unique
// without coordination, mirroring the paper's use of JXTA-generated ids.
struct NullLabel {
  uint32_t peer = 0;
  uint64_t counter = 0;

  friend bool operator==(const NullLabel& a, const NullLabel& b) {
    return a.peer == b.peer && a.counter == b.counter;
  }
  friend auto operator<=>(const NullLabel& a, const NullLabel& b) = default;
};

class Value {
 public:
  // Default: int 0 (keeps Value regular; callers always overwrite).
  Value() : type_(ValueType::kInt) { payload_.i = 0; }

  static Value Int(int64_t v) {
    Value out;
    out.payload_.i = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.type_ = ValueType::kDouble;
    out.payload_.d = v;
    return out;
  }
  static Value String(std::string_view v) {
    Value out;
    out.type_ = ValueType::kString;
    out.payload_.symbol = StringInterner::Global().Intern(v);
    return out;
  }
  static Value Null(NullLabel label) {
    Value out;
    out.type_ = ValueType::kNull;
    out.payload_.null = label;
    return out;
  }
  static Value Null(uint32_t peer, uint64_t counter) {
    return Null(NullLabel{peer, counter});
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  // Accessors require the matching type (checked by assert in debug
  // builds). Defined inline: they sit on the join/index hot paths and are
  // called millions of times per update.
  int64_t AsInt() const {
    assert(type_ == ValueType::kInt);
    return payload_.i;
  }
  double AsDouble() const {
    assert(type_ == ValueType::kDouble);
    return payload_.d;
  }
  const std::string& AsString() const {
    assert(type_ == ValueType::kString);
    return StringInterner::Global().Lookup(payload_.symbol);
  }
  const NullLabel& AsNull() const {
    assert(type_ == ValueType::kNull);
    return payload_.null;
  }

  // The interned symbol of a string value (its process-local identity).
  uint32_t symbol() const {
    assert(type_ == ValueType::kString);
    return payload_.symbol;
  }

  // Numeric view: ints and doubles compare by numeric value in comparison
  // predicates. Requires a numeric type.
  double AsNumeric() const {
    return type_ == ValueType::kInt ? static_cast<double>(AsInt())
                                    : AsDouble();
  }
  bool IsNumeric() const {
    return type_ == ValueType::kInt || type_ == ValueType::kDouble;
  }

  // Exact equality: same type and same payload (strings by symbol, nulls by
  // label). Int and double never compare equal even if numerically equal —
  // rule bodies are typed, so cross-type joins do not arise.
  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    switch (a.type_) {
      case ValueType::kInt:
        return a.payload_.i == b.payload_.i;
      case ValueType::kDouble:
        return a.payload_.d == b.payload_.d;
      case ValueType::kString:
        return a.payload_.symbol == b.payload_.symbol;
      case ValueType::kNull:
        return a.payload_.null == b.payload_.null;
    }
    return false;
  }

  // Total order (type index first, then payload; strings lexicographically)
  // so values can key ordered containers deterministically.
  friend bool operator<(const Value& a, const Value& b);

  size_t Hash() const {
    size_t type_salt = static_cast<size_t>(type_) * 0x9e3779b97f4a7c15ULL;
    switch (type_) {
      case ValueType::kInt:
        return MixBits(type_salt ^ static_cast<size_t>(payload_.i));
      case ValueType::kDouble: {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(payload_.d));
        __builtin_memcpy(&bits, &payload_.d, sizeof(bits));
        return MixBits(type_salt ^ static_cast<size_t>(bits));
      }
      case ValueType::kString:
        // Symbols identify strings process-wide, so hashing the id is
        // consistent with operator== and avoids touching the characters.
        return MixBits(type_salt ^ static_cast<size_t>(payload_.symbol));
      case ValueType::kNull:
        return MixBits(type_salt ^
                       (static_cast<size_t>(payload_.null.peer) << 48) ^
                       static_cast<size_t>(payload_.null.counter));
    }
    return 0;
  }

  // "42", "3.5", "'bob'", "#7:12" (marked null minted by peer 7).
  std::string ToString() const;

  // Serialized size in bytes on the wire (see relation/wire.h); used for
  // the data-volume statistics even before serialization happens.
  size_t WireSize() const;

 private:
  // 64-bit finalizer mix (from MurmurHash3) for hash quality.
  static size_t MixBits(size_t h) {
    uint64_t x = h;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }

  ValueType type_;
  union Payload {
    Payload() : i(0) {}
    int64_t i;
    double d;
    uint32_t symbol;
    NullLabel null;
  } payload_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace codb

#endif  // CODB_RELATION_VALUE_H_
