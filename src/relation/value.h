// Typed values, including marked nulls.
//
// coDB propagates data through GLAV rules whose heads may contain
// existentially quantified variables; those are instantiated with *marked
// nulls* (labelled Skolem constants, written ⊥_{peer:counter}). Marked nulls
// are ordinary first-class values: they can be stored, joined on, and
// propagated further, and two marked nulls are equal iff their labels are
// equal (identity of the witness, per the paper's "fresh new marked null
// values" in section 3).

#ifndef CODB_RELATION_VALUE_H_
#define CODB_RELATION_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace codb {

enum class ValueType {
  kInt = 0,
  kDouble = 1,
  kString = 2,
  kNull = 3,  // marked null
};

const char* ValueTypeName(ValueType type);

// Label of a marked null: (minting peer, per-peer counter). Globally unique
// without coordination, mirroring the paper's use of JXTA-generated ids.
struct NullLabel {
  uint32_t peer = 0;
  uint64_t counter = 0;

  friend bool operator==(const NullLabel& a, const NullLabel& b) {
    return a.peer == b.peer && a.counter == b.counter;
  }
  friend auto operator<=>(const NullLabel& a, const NullLabel& b) = default;
};

class Value {
 public:
  // Default: int 0 (keeps Value regular; callers always overwrite).
  Value() : rep_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }
  static Value Null(NullLabel label) { return Value(Rep(label)); }
  static Value Null(uint32_t peer, uint64_t counter) {
    return Value(Rep(NullLabel{peer, counter}));
  }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  // Accessors require the matching type (checked by assert in debug builds).
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const NullLabel& AsNull() const { return std::get<NullLabel>(rep_); }

  // Numeric view: ints and doubles compare by numeric value in comparison
  // predicates. Requires a numeric type.
  double AsNumeric() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt())
                                     : AsDouble();
  }
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  // Exact equality: same type and same payload (nulls by label). Int and
  // double never compare equal even if numerically equal — rule bodies are
  // typed, so cross-type joins do not arise.
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }

  // Total order (type index first, then payload) so values can key ordered
  // containers deterministically.
  friend bool operator<(const Value& a, const Value& b) {
    return a.rep_ < b.rep_;
  }

  size_t Hash() const;

  // "42", "3.5", "'bob'", "#7:12" (marked null minted by peer 7).
  std::string ToString() const;

  // Serialized size in bytes on the wire (see net/wire.h); used for the
  // data-volume statistics even before serialization happens.
  size_t WireSize() const;

 private:
  using Rep = std::variant<int64_t, double, std::string, NullLabel>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace codb

#endif  // CODB_RELATION_VALUE_H_
