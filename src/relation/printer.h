// Table-formatted rendering of relations and query results — the textual
// equivalent of the paper's query-interface window (Figure 2).

#ifndef CODB_RELATION_PRINTER_H_
#define CODB_RELATION_PRINTER_H_

#include <string>
#include <vector>

#include "relation/relation.h"

namespace codb {

// Renders rows under a header as an aligned ASCII table:
//
//   +----+-------+
//   | id | name  |
//   +----+-------+
//   | 1  | 'bob' |
//   +----+-------+
std::string FormatTable(const std::vector<std::string>& header,
                        const std::vector<Tuple>& rows);

// Convenience: a whole relation with its attribute names as header.
std::string FormatRelation(const Relation& relation);

}  // namespace codb

#endif  // CODB_RELATION_PRINTER_H_
