// Relation schemas and database schemas.
//
// The Database Schema (DBS in Figure 1 of the paper) is the part of a node's
// local database that is shared with the network; a node must always publish
// a DBS to participate, even when the local database itself is absent
// (mediator nodes).

#ifndef CODB_RELATION_SCHEMA_H_
#define CODB_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "relation/value.h"
#include "util/status.h"

namespace codb {

struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.type == b.type;
  }
};

// Schema of one relation: a name plus an ordered attribute list.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<Attribute> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  int arity() const { return static_cast<int>(attributes_.size()); }

  // Index of the attribute with the given name, or -1.
  int AttributeIndex(const std::string& attribute_name) const;

  // "r(a:int, b:string)".
  std::string ToString() const;

  friend bool operator==(const RelationSchema& a, const RelationSchema& b) {
    return a.name_ == b.name_ && a.attributes_ == b.attributes_;
  }

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
};

// Schema of a whole (exported) database: the DBS repository contents.
class DatabaseSchema {
 public:
  DatabaseSchema() = default;

  // Fails with kAlreadyExists on duplicate relation names.
  Status AddRelation(RelationSchema schema);

  const RelationSchema* FindRelation(const std::string& name) const;
  const std::vector<RelationSchema>& relations() const { return relations_; }

  std::string ToString() const;

 private:
  std::vector<RelationSchema> relations_;
};

}  // namespace codb

#endif  // CODB_RELATION_SCHEMA_H_
