#include "relation/database.h"

namespace codb {

Status Database::CreateRelation(RelationSchema schema) {
  std::string name = schema.name();  // copy: `schema` is moved below
  if (relations_.find(name) != relations_.end()) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  auto relation = std::make_unique<Relation>(std::move(schema));
  relations_.emplace(std::move(name), std::move(relation));
  return Status::Ok();
}

Relation* Database::Find(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

const Relation* Database::Find(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Result<Relation*> Database::Get(const std::string& name) {
  Relation* r = Find(name);
  if (r == nullptr) {
    return Status::NotFound("relation '" + name + "' does not exist");
  }
  return r;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, relation] : relations_) names.push_back(name);
  return names;
}

DatabaseSchema Database::Schema() const {
  DatabaseSchema schema;
  for (const auto& [name, relation] : relations_) {
    // Names are unique in the catalog, so AddRelation cannot fail.
    schema.AddRelation(relation->schema());
  }
  return schema;
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, relation] : relations_) total += relation->size();
  return total;
}

std::map<std::string, std::vector<Tuple>> Database::Snapshot() const {
  std::map<std::string, std::vector<Tuple>> snapshot;
  for (const auto& [name, relation] : relations_) {
    snapshot[name] = relation->rows();
  }
  return snapshot;
}

Status Database::Restore(
    const std::map<std::string, std::vector<Tuple>>& snapshot) {
  for (const auto& [name, rows] : snapshot) {
    Relation* r = Find(name);
    if (r == nullptr) {
      return Status::NotFound("restore: relation '" + name + "' missing");
    }
    r->Clear();
    for (const Tuple& t : rows) r->Insert(t);
  }
  return Status::Ok();
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, relation] : relations_) {
    out += relation->ToString();
    out += "\n";
  }
  return out;
}

}  // namespace codb
