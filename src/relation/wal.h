// Write-ahead journal for the local database.
//
// The paper's nodes sit on top of an RDBMS whose durability they inherit;
// the in-memory engine gets the same property from this append-only
// journal: every tuple imported from the network is logged, and a
// restarted node rebuilds its store by reloading its own base data and
// replaying the journal. The byte format reuses the wire layer, so a
// journal can also be shipped or checkpointed as one blob.

#ifndef CODB_RELATION_WAL_H_
#define CODB_RELATION_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/database.h"
#include "relation/tuple.h"
#include "util/status.h"

namespace codb {

// Anything that can journal imported tuples. The wrapper logs through
// this interface, so the in-memory journal below and the durable
// file-backed WAL (storage/storage.h) are interchangeable sinks.
class JournalSink {
 public:
  virtual ~JournalSink() = default;

  // Records one insertion. Sinks must not throw; a durable sink that hits
  // an I/O error records it internally (see DurableStorage::last_error).
  virtual void LogInsert(const std::string& relation,
                         const Tuple& tuple) = 0;
};

class WriteAheadLog : public JournalSink {
 public:
  WriteAheadLog() = default;

  // Appends one insertion record.
  void LogInsert(const std::string& relation, const Tuple& tuple) override;

  size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  // Re-applies every record, in order, to `db` (set semantics absorbs
  // duplicates). Unknown relations are an error.
  Status ReplayInto(Database& db) const;

  // One blob; Deserialize is bounds-checked and rejects corrupt input.
  std::vector<uint8_t> Serialize() const;
  static Result<WriteAheadLog> Deserialize(
      const std::vector<uint8_t>& bytes);

  // File persistence (whole-journal write/read; atomic via rename is the
  // caller's concern). <filesystem> is deliberately avoided per house
  // style; plain stdio suffices.
  Status SaveToFile(const std::string& path) const;
  static Result<WriteAheadLog> LoadFromFile(const std::string& path);

 private:
  struct Entry {
    std::string relation;
    Tuple tuple;
  };
  std::vector<Entry> entries_;
};

}  // namespace codb

#endif  // CODB_RELATION_WAL_H_
