#include "relation/relation.h"

#include <cassert>

namespace codb {

const std::vector<const Tuple*> Relation::kEmptyBucket = {};

bool Relation::Insert(const Tuple& tuple) {
  assert(tuple.arity() == arity() && "tuple arity does not match schema");
  auto [it, inserted] = index_.insert(tuple);
  if (inserted) {
    rows_.push_back(tuple);
    InvalidateIndexes();
  }
  return inserted;
}

std::vector<Tuple> Relation::InsertNew(const std::vector<Tuple>& batch) {
  std::vector<Tuple> fresh;
  for (const Tuple& t : batch) {
    if (Insert(t)) fresh.push_back(t);
  }
  return fresh;
}

std::vector<Tuple> Relation::Difference(
    const std::vector<Tuple>& batch) const {
  std::vector<Tuple> out;
  for (const Tuple& t : batch) {
    if (!Contains(t)) out.push_back(t);
  }
  return out;
}

void Relation::Clear() {
  rows_.clear();
  index_.clear();
  InvalidateIndexes();
}

const std::vector<const Tuple*>& Relation::Probe(int column,
                                                 const Value& key) const {
  assert(column >= 0 && column < arity());
  if (column_indexes_.empty()) {
    column_indexes_.resize(static_cast<size_t>(arity()));
  }
  ColumnIndex& ci = column_indexes_[static_cast<size_t>(column)];
  if (!ci.built) {
    ci.buckets.clear();
    for (const Tuple& t : rows_) {
      ci.buckets[t.at(column)].push_back(&t);
    }
    ci.built = true;
  }
  auto it = ci.buckets.find(key);
  return it == ci.buckets.end() ? kEmptyBucket : it->second;
}

void Relation::InvalidateIndexes() {
  // rows_ may have reallocated, so pointers in every built index are stale.
  for (ColumnIndex& ci : column_indexes_) {
    ci.built = false;
    ci.buckets.clear();
  }
}

size_t Relation::WireSize() const {
  size_t total = 0;
  for (const Tuple& t : rows_) total += t.WireSize();
  return total;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {\n";
  for (const Tuple& t : rows_) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace codb
