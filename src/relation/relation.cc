#include "relation/relation.h"

#include <algorithm>
#include <cassert>

namespace codb {

const Relation::RowIndexList Relation::kEmptyBucket = {};

bool Relation::Insert(const Tuple& tuple) {
  assert(tuple.arity() == arity() && "tuple arity does not match schema");
  // Speculative append: pushing the row first lets the dedup set resolve
  // presence with a single hash+probe (insert) instead of find-then-insert.
  // A duplicate is popped right back; the set never saw it.
  rows_.push_back(tuple);
  uint32_t row = static_cast<uint32_t>(rows_.size() - 1);
  if (!index_.insert(row).second) {
    rows_.pop_back();
    return false;
  }
  AppendToIndexes(rows_.back(), row);
  return true;
}

std::vector<Tuple> Relation::InsertNew(const std::vector<Tuple>& batch) {
  Reserve(rows_.size() + batch.size());
  std::vector<Tuple> fresh;
  for (const Tuple& t : batch) {
    if (Insert(t)) fresh.push_back(t);
  }
  return fresh;
}

void Relation::Reserve(size_t n) {
  // Grow at least geometrically: repeated calls with slightly larger `n`
  // (one per incoming batch) must not degrade the containers' amortized
  // doubling into a full realloc/rehash per call.
  if (n > rows_.capacity()) {
    rows_.reserve(std::max(n, rows_.capacity() * 2));
  }
  size_t ceiling = static_cast<size_t>(
      static_cast<float>(index_.bucket_count()) * index_.max_load_factor());
  if (n > ceiling) index_.reserve(std::max(n, ceiling * 2));
  for (ColumnIndex& ci : column_indexes_) {
    if (!ci.built) continue;
    size_t bucket_ceiling = static_cast<size_t>(
        static_cast<float>(ci.buckets.bucket_count()) *
        ci.buckets.max_load_factor());
    if (n > bucket_ceiling) {
      ci.buckets.reserve(std::max(n, bucket_ceiling * 2));
    }
  }
}

std::vector<Tuple> Relation::Difference(
    const std::vector<Tuple>& batch) const {
  std::vector<Tuple> out;
  for (const Tuple& t : batch) {
    if (!Contains(t)) out.push_back(t);
  }
  return out;
}

void Relation::Clear() {
  rows_.clear();
  index_.clear();
  column_indexes_.clear();
  composite_indexes_.clear();
}

void Relation::AppendToIndexes(const Tuple& tuple, uint32_t row) const {
  for (size_t c = 0; c < column_indexes_.size(); ++c) {
    ColumnIndex& ci = column_indexes_[c];
    if (ci.built) {
      ci.buckets[tuple.at(static_cast<int>(c))].push_back(row);
    }
  }
  for (auto& [columns, composite] : composite_indexes_) {
    composite.buckets[ProjectColumns(tuple, columns)].push_back(row);
  }
}

Tuple Relation::ProjectColumns(const Tuple& tuple,
                               const std::vector<int>& columns) {
  if (columns.size() <= Tuple::kInlineCapacity) {
    Value key[Tuple::kInlineCapacity];
    for (size_t i = 0; i < columns.size(); ++i) {
      key[i] = tuple.at(columns[i]);
    }
    return Tuple(key, columns.size());
  }
  std::vector<Value> key;
  key.reserve(columns.size());
  for (int c : columns) key.push_back(tuple.at(c));
  return Tuple(key);
}

void Relation::EnsureColumnIndex(int column) const {
  assert(column >= 0 && column < arity());
  if (column_indexes_.empty()) {
    column_indexes_.resize(static_cast<size_t>(arity()));
  }
  ColumnIndex& ci = column_indexes_[static_cast<size_t>(column)];
  if (ci.built) return;
  ci.buckets.reserve(rows_.size());
  for (size_t row = 0; row < rows_.size(); ++row) {
    ci.buckets[rows_[row].at(column)].push_back(static_cast<uint32_t>(row));
  }
  ci.built = true;
}

Relation::CompositeIndex& Relation::EnsureCompositeIndexImpl(
    const std::vector<int>& columns) const {
  assert(!columns.empty());
  assert(std::is_sorted(columns.begin(), columns.end()));
  auto [it, created] = composite_indexes_.try_emplace(columns);
  CompositeIndex& composite = it->second;
  if (created) {
    composite.buckets.reserve(rows_.size());
    for (size_t row = 0; row < rows_.size(); ++row) {
      composite.buckets[ProjectColumns(rows_[row], columns)].push_back(
          static_cast<uint32_t>(row));
    }
  }
  return composite;
}

void Relation::EnsureCompositeIndex(const std::vector<int>& columns) const {
  EnsureCompositeIndexImpl(columns);
}

const Relation::RowIndexList& Relation::Probe(int column,
                                              const Value& key) const {
  EnsureColumnIndex(column);
  const ColumnIndex& ci = column_indexes_[static_cast<size_t>(column)];
  auto it = ci.buckets.find(key);
  return it == ci.buckets.end() ? kEmptyBucket : it->second;
}

const Relation::RowIndexList& Relation::ProbeComposite(
    const std::vector<int>& columns, const std::vector<Value>& keys) const {
  assert(columns.size() == keys.size());
  const CompositeIndex& composite = EnsureCompositeIndexImpl(columns);
  auto bucket = composite.buckets.find(Tuple(keys.data(), keys.size()));
  return bucket == composite.buckets.end() ? kEmptyBucket : bucket->second;
}

size_t Relation::WireSize() const {
  size_t total = 0;
  for (const Tuple& t : rows_) total += t.WireSize();
  return total;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {\n";
  for (const Tuple& t : rows_) {
    out += "  " + t.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace codb
