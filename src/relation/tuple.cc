#include "relation/tuple.h"

#include <map>

namespace codb {

bool Tuple::HasNull() const {
  for (const Value& v : *this) {
    if (v.is_null()) return true;
  }
  return false;
}

Tuple Tuple::CanonicalizeNulls() const {
  std::map<NullLabel, uint64_t> renaming;
  std::vector<Value> out;
  out.reserve(size_);
  for (const Value& v : *this) {
    if (v.is_null()) {
      auto [it, inserted] =
          renaming.emplace(v.AsNull(), renaming.size());
      out.push_back(Value::Null(0, it->second));
    } else {
      out.push_back(v);
    }
  }
  return Tuple(out);
}

std::string Tuple::ToString() const {
  std::string out = "(";
  const Value* values = data();
  for (uint32_t i = 0; i < size_; ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += ")";
  return out;
}

size_t Tuple::WireSize() const {
  size_t total = 2;  // arity prefix
  for (const Value& v : *this) total += v.WireSize();
  return total;
}

}  // namespace codb
