#include "relation/tuple.h"

#include <map>

namespace codb {

bool Tuple::HasNull() const {
  for (const Value& v : values_) {
    if (v.is_null()) return true;
  }
  return false;
}

Tuple Tuple::CanonicalizeNulls() const {
  std::map<NullLabel, uint64_t> renaming;
  std::vector<Value> out;
  out.reserve(values_.size());
  for (const Value& v : values_) {
    if (v.is_null()) {
      auto [it, inserted] =
          renaming.emplace(v.AsNull(), renaming.size());
      out.push_back(Value::Null(0, it->second));
    } else {
      out.push_back(v);
    }
  }
  return Tuple(std::move(out));
}

size_t Tuple::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : values_) {
    h = h * 31 + v.Hash();
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

size_t Tuple::WireSize() const {
  size_t total = 2;  // arity prefix
  for (const Value& v : values_) total += v.WireSize();
  return total;
}

}  // namespace codb
