// Fixed-arity tuples of values.
//
// Small-buffer representation: arities up to kInlineCapacity (the common
// case — coordination-rule heads and bodies are narrow) live inline, so
// copying a tuple between the wire buffer, row storage, dedup sets, and
// provenance never allocates. Wider tuples fall back to a heap array.

#ifndef CODB_RELATION_TUPLE_H_
#define CODB_RELATION_TUPLE_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "relation/value.h"

namespace codb {

class Tuple {
 public:
  static constexpr uint32_t kInlineCapacity = 4;

  Tuple() = default;
  Tuple(const Value* values, size_t count) { Assign(values, count); }
  explicit Tuple(const std::vector<Value>& values)
      : Tuple(values.data(), values.size()) {}
  Tuple(std::initializer_list<Value> values)
      : Tuple(values.begin(), values.size()) {}

  Tuple(const Tuple& other) { Assign(other.data(), other.size_); }
  Tuple(Tuple&& other) noexcept
      : heap_(other.heap_), size_(other.size_) {
    if (heap_ == nullptr) {
      std::copy(other.inline_, other.inline_ + size_, inline_);
    }
    other.heap_ = nullptr;
    other.size_ = 0;
  }
  Tuple& operator=(const Tuple& other) {
    if (this != &other) {
      delete[] heap_;
      heap_ = nullptr;
      Assign(other.data(), other.size_);
    }
    return *this;
  }
  Tuple& operator=(Tuple&& other) noexcept {
    if (this != &other) {
      delete[] heap_;
      heap_ = other.heap_;
      size_ = other.size_;
      if (heap_ == nullptr) {
        std::copy(other.inline_, other.inline_ + size_, inline_);
      }
      other.heap_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  ~Tuple() { delete[] heap_; }

  int arity() const { return static_cast<int>(size_); }
  const Value& at(int i) const { return data()[i]; }

  const Value* begin() const { return data(); }
  const Value* end() const { return data() + size_; }

  // True if any component is a marked null.
  bool HasNull() const;

  // Renames every marked null to #0:k where k is the order of first
  // occurrence inside this tuple. Two tuples whose nulls do not occur
  // elsewhere are isomorphic iff their canonical forms are equal.
  Tuple CanonicalizeNulls() const;

  // Inline: keys every dedup set and index bucket on the update hot path.
  size_t Hash() const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    const Value* values = data();
    for (uint32_t i = 0; i < size_; ++i) {
      h = h * 31 + values[i].Hash();
    }
    return h;
  }

  // "(1, 'a', #3:7)".
  std::string ToString() const;

  // Serialized payload size on the wire.
  size_t WireSize() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                        b.end());
  }

 private:
  const Value* data() const {
    return heap_ == nullptr ? inline_ : heap_;
  }
  void Assign(const Value* values, size_t count) {
    size_ = static_cast<uint32_t>(count);
    if (count <= kInlineCapacity) {
      std::copy(values, values + count, inline_);
    } else {
      heap_ = new Value[count];
      std::copy(values, values + count, heap_);
    }
  }

  Value* heap_ = nullptr;  // null when the tuple fits inline
  uint32_t size_ = 0;
  Value inline_[kInlineCapacity];
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace codb

#endif  // CODB_RELATION_TUPLE_H_
