// Fixed-arity tuples of values.

#ifndef CODB_RELATION_TUPLE_H_
#define CODB_RELATION_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "relation/value.h"

namespace codb {

class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int arity() const { return static_cast<int>(values_.size()); }
  const Value& at(int i) const { return values_[static_cast<size_t>(i)]; }
  const std::vector<Value>& values() const { return values_; }

  // True if any component is a marked null.
  bool HasNull() const;

  // Renames every marked null to #0:k where k is the order of first
  // occurrence inside this tuple. Two tuples whose nulls do not occur
  // elsewhere are isomorphic iff their canonical forms are equal.
  Tuple CanonicalizeNulls() const;

  size_t Hash() const;

  // "(1, 'a', #3:7)".
  std::string ToString() const;

  // Serialized payload size on the wire.
  size_t WireSize() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace codb

#endif  // CODB_RELATION_TUPLE_H_
