#include "relation/schema.h"

namespace codb {

int RelationSchema::AttributeIndex(const std::string& attribute_name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == attribute_name) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationSchema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

Status DatabaseSchema::AddRelation(RelationSchema schema) {
  if (FindRelation(schema.name()) != nullptr) {
    return Status::AlreadyExists("relation '" + schema.name() +
                                 "' already in schema");
  }
  relations_.push_back(std::move(schema));
  return Status::Ok();
}

const RelationSchema* DatabaseSchema::FindRelation(
    const std::string& name) const {
  for (const RelationSchema& r : relations_) {
    if (r.name() == name) return &r;
  }
  return nullptr;
}

std::string DatabaseSchema::ToString() const {
  std::string out;
  for (const RelationSchema& r : relations_) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace codb
