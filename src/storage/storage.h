// DurableStorage: the façade a node attaches for crash-safe persistence.
//
// Open() recovers the database from the directory (newest valid
// checkpoint + WAL tail replay), then opens a fresh WAL segment for
// appending. From then on the object is a JournalSink: every imported
// tuple the wrapper logs is streamed to the durable WAL, checkpoints are
// cut on demand or automatically every N appends, and WAL segments a
// retained checkpoint no longer needs are pruned. All counters flow into
// an optional DurabilityStats (the node passes its statistics module's).

#ifndef CODB_STORAGE_STORAGE_H_
#define CODB_STORAGE_STORAGE_H_

#include <deque>
#include <memory>
#include <string>

#include "relation/database.h"
#include "relation/wal.h"
#include "storage/checkpoint.h"
#include "storage/durability_stats.h"
#include "storage/recovery.h"
#include "storage/storage_options.h"
#include "storage/wal_file.h"

namespace codb {

class DurableStorage : public JournalSink {
 public:
  // Recovers `db` from options.directory (created if missing) and opens
  // the WAL. If the directory held no checkpoint, an initial one is cut
  // immediately so the database's current (seeded) content is durable.
  // `db` and `stats` (optional) must outlive the storage.
  static Result<std::unique_ptr<DurableStorage>> Open(
      StorageOptions options, Database* db,
      DurabilityStats* stats = nullptr);

  // JournalSink: appends to the durable WAL; failures are recorded in
  // last_error() and counted, never thrown.
  void LogInsert(const std::string& relation, const Tuple& tuple) override;

  // Snapshots the database, writes a checkpoint, prunes WAL segments no
  // retained checkpoint needs.
  Status Checkpoint();

  Status Flush() { return wal_->Flush(); }

  const RecoveryOutcome& recovery() const { return recovery_; }
  Status last_error() const { return last_error_; }
  uint64_t next_lsn() const { return wal_->next_lsn(); }
  const std::string& directory() const { return options_.directory; }

 private:
  DurableStorage(StorageOptions options, Database* db,
                 DurabilityStats* stats)
      : options_(std::move(options)),
        db_(db),
        stats_(stats),
        checkpoint_writer_(options_) {}

  StorageOptions options_;
  Database* db_;
  DurabilityStats* stats_;  // optional, not owned
  CheckpointWriter checkpoint_writer_;
  std::unique_ptr<FileWal> wal_;
  RecoveryOutcome recovery_;
  Status last_error_;
  uint64_t appends_since_checkpoint_ = 0;
  // High-water marks of the retained checkpoints, oldest first; the WAL
  // is pruned only through the front (recovery may need to fall back).
  std::deque<uint64_t> retained_checkpoint_lsns_;
};

}  // namespace codb

#endif  // CODB_STORAGE_STORAGE_H_
