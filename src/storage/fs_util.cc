#include "storage/fs_util.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace codb {

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("empty directory path");
  }
  // Walk the components so nested experiment directories work too.
  for (size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    std::string prefix = path.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Unavailable("mkdir '" + prefix +
                                 "': " + std::strerror(errno));
    }
  }
  return Status::Ok();
}

Result<std::vector<std::string>> ListDirectory(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return Status::NotFound("opendir '" + path +
                            "': " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + read);
  }
  std::fclose(file);
  return bytes;
}

Status RemoveFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    return Status::Unavailable("remove '" + path +
                               "': " + std::strerror(errno));
  }
  return Status::Ok();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Unavailable("rename '" + from + "' -> '" + to +
                               "': " + std::strerror(errno));
  }
  return Status::Ok();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Unavailable("truncate '" + path +
                               "': " + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace codb
