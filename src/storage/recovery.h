// RecoveryManager: rebuilds a node's database from its storage directory.
//
// Protocol: load the newest checkpoint that validates (falling back past
// corrupt files; with none usable, fall back to a full WAL replay from
// LSN 0), restore it into the database, then replay the WAL tail —
// records with lsn > the checkpoint's high-water mark. Torn or corrupt
// WAL tails are truncated to the durable prefix by the WAL reader;
// recovery itself fails only on environmental errors (unreadable
// directory) or on a WAL record naming a relation the schema lacks.

#ifndef CODB_STORAGE_RECOVERY_H_
#define CODB_STORAGE_RECOVERY_H_

#include <string>

#include "relation/database.h"
#include "util/status.h"

namespace codb {

struct RecoveryOutcome {
  bool checkpoint_loaded = false;
  bool checkpoint_fell_back = false;  // newest checkpoint corrupt
  uint64_t checkpoint_lsn = 0;
  uint64_t checkpoint_tuples = 0;
  uint64_t wal_records_replayed = 0;
  bool wal_tail_truncated = false;
  uint64_t wal_truncated_bytes = 0;
  bool wal_stopped_early = false;  // mid-log corruption; prefix recovered
  uint64_t next_lsn = 1;           // where the reopened WAL resumes
  double wall_micros = 0;
};

class RecoveryManager {
 public:
  // Restores `db` (relations already created from the schema) from
  // `directory`. A directory with no durable state yields an empty
  // outcome and leaves `db` untouched.
  static Result<RecoveryOutcome> Recover(const std::string& directory,
                                         Database& db);
};

}  // namespace codb

#endif  // CODB_STORAGE_RECOVERY_H_
