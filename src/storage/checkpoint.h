// Checkpoints: checksummed snapshot files that bound WAL replay.
//
// A checkpoint serializes a full Database::Snapshot() plus the WAL
// high-water mark (the LSN of the last record the snapshot already
// contains). On-disk format, one file per checkpoint:
//
//   checkpoint-<seq:020d>.ckpt
//     "CODBCKP1" magic (8 bytes)
//     u64 payload length + u32 crc32c(payload)
//     payload: u64 wal_lsn, u32 #relations,
//              per relation: string name + tuple list  (wire framing)
//
// Writes are atomic (temp file + rename), so a crash mid-checkpoint
// leaves only an ignorable *.tmp; the previous checkpoint stays valid.
// The newest `checkpoints_to_keep` files are retained so recovery can
// fall back when the newest one is corrupt.

#ifndef CODB_STORAGE_CHECKPOINT_H_
#define CODB_STORAGE_CHECKPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "relation/tuple.h"
#include "storage/storage_options.h"
#include "util/status.h"

namespace codb {

struct CheckpointData {
  // WAL records with lsn <= wal_lsn are already reflected in `snapshot`;
  // replay resumes after it.
  uint64_t wal_lsn = 0;
  std::map<std::string, std::vector<Tuple>> snapshot;
};

class CheckpointWriter {
 public:
  explicit CheckpointWriter(const StorageOptions& options)
      : directory_(options.directory),
        keep_(options.checkpoints_to_keep < 1 ? 1
                                              : options.checkpoints_to_keep),
        fail_after_bytes_(options.fault.checkpoint_fail_after_bytes) {}

  // Writes the next checkpoint atomically and prunes retained files beyond
  // the keep-count. Returns the sequence number used.
  Result<uint64_t> Write(const CheckpointData& data);

  uint64_t checkpoints_written() const { return checkpoints_written_; }
  uint64_t bytes_written() const { return bytes_written_; }

  // Loads the newest checkpoint that passes validation, falling back to
  // older files past corrupt ones. kNotFound when no valid checkpoint
  // exists (none written, or every file is damaged).
  struct LoadResult {
    CheckpointData data;
    uint64_t seq = 0;
    bool fell_back = false;  // the newest file was corrupt; an older one won
  };
  static Result<LoadResult> LoadNewest(const std::string& directory);

  static std::string FileName(uint64_t seq);

 private:
  std::string directory_;
  int keep_;
  long long fail_after_bytes_;
  long long fault_budget_used_ = 0;
  uint64_t next_seq_ = 0;  // 0 = derive from the directory on first write
  uint64_t checkpoints_written_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace codb

#endif  // CODB_STORAGE_CHECKPOINT_H_
