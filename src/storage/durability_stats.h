// Counters and timings of the durable-storage subsystem, accumulated per
// node and shipped to the super-peer inside the kStatsReport payload
// (core/statistics.h embeds one of these next to the update reports).

#ifndef CODB_STORAGE_DURABILITY_STATS_H_
#define CODB_STORAGE_DURABILITY_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "relation/wire.h"
#include "util/status.h"

namespace codb {

struct DurabilityStats {
  uint64_t wal_records_appended = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t wal_segments_created = 0;
  uint64_t wal_append_failures = 0;
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_bytes_written = 0;
  uint64_t recoveries = 0;
  uint64_t recovered_checkpoint_tuples = 0;
  uint64_t recovered_wal_records = 0;
  uint64_t torn_tails_truncated = 0;
  double checkpoint_wall_micros = 0;
  double recovery_wall_micros = 0;

  // True once any durable activity happened (gates report sections).
  bool Any() const;

  void Add(const DurabilityStats& other);

  void SerializeTo(WireWriter& writer) const;
  static Result<DurabilityStats> DeserializeFrom(WireReader& reader);

  // Uniform snapshot form under storage.* names; wall timings become
  // storage.*.wall_us gauges (rounded to whole microseconds).
  MetricsSnapshot ToSnapshot() const;

  // Indented human-readable block for node and super-peer reports,
  // rendered from ToSnapshot() so human and machine views cannot drift.
  std::string Render() const;
};

}  // namespace codb

#endif  // CODB_STORAGE_DURABILITY_STATS_H_
