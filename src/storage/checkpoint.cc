#include "storage/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "relation/wire.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"
#include "util/string_util.h"

namespace codb {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'D', 'B', 'C', 'K', 'P', '1'};

bool IsCheckpointName(const std::string& name) {
  return name.size() == 11 + 20 + 5 && name.rfind("checkpoint-", 0) == 0 &&
         name.compare(name.size() - 5, 5, ".ckpt") == 0;
}

uint64_t CheckpointSeq(const std::string& name) {
  return std::strtoull(name.c_str() + 11, nullptr, 10);
}

std::vector<uint8_t> SerializePayload(const CheckpointData& data) {
  WireWriter writer;
  writer.WriteU64(data.wal_lsn);
  writer.WriteU32(static_cast<uint32_t>(data.snapshot.size()));
  for (const auto& [relation, tuples] : data.snapshot) {
    writer.WriteString(relation);
    writer.WriteTuples(tuples);
  }
  return writer.Take();
}

Result<CheckpointData> DeserializePayload(
    const std::vector<uint8_t>& payload) {
  WireReader reader(payload);
  CheckpointData data;
  CODB_ASSIGN_OR_RETURN(data.wal_lsn, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    CODB_ASSIGN_OR_RETURN(std::string relation, reader.ReadString());
    CODB_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, reader.ReadTuples());
    data.snapshot.emplace(std::move(relation), std::move(tuples));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("checkpoint payload has trailing bytes");
  }
  return data;
}

}  // namespace

std::string CheckpointWriter::FileName(uint64_t seq) {
  return StrFormat("checkpoint-%020llu.ckpt",
                   static_cast<unsigned long long>(seq));
}

Result<uint64_t> CheckpointWriter::Write(const CheckpointData& data) {
  CODB_RETURN_IF_ERROR(EnsureDirectory(directory_));
  if (next_seq_ == 0) {
    // Resume numbering past whatever a previous incarnation left behind.
    CODB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                          ListDirectory(directory_));
    uint64_t max_seq = 0;
    for (const std::string& name : names) {
      if (IsCheckpointName(name) && CheckpointSeq(name) > max_seq) {
        max_seq = CheckpointSeq(name);
      }
    }
    next_seq_ = max_seq + 1;
  }
  uint64_t seq = next_seq_;

  std::vector<uint8_t> payload = SerializePayload(data);
  std::vector<uint8_t> bytes(kMagic, kMagic + sizeof kMagic);
  WireWriter framing;
  framing.WriteU64(payload.size());
  framing.WriteU32(Crc32c(payload));
  std::vector<uint8_t> frame = framing.Take();
  bytes.insert(bytes.end(), frame.begin(), frame.end());
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  std::string tmp_path =
      directory_ + "/" + FileName(seq) + ".tmp";
  std::string final_path = directory_ + "/" + FileName(seq);
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Unavailable("cannot open '" + tmp_path +
                               "' for writing");
  }
  size_t to_write = bytes.size();
  if (fail_after_bytes_ >= 0 &&
      fault_budget_used_ + static_cast<long long>(to_write) >
          fail_after_bytes_) {
    // Injected crash mid-checkpoint: a torn temp file that the loader
    // never looks at; the rename below never happens.
    to_write = fail_after_bytes_ > fault_budget_used_
                   ? static_cast<size_t>(fail_after_bytes_ -
                                         fault_budget_used_)
                   : 0;
    std::fwrite(bytes.data(), 1, to_write, file);
    std::fclose(file);
    fault_budget_used_ += static_cast<long long>(bytes.size());
    return Status::Unavailable("injected checkpoint write failure");
  }
  size_t written = std::fwrite(bytes.data(), 1, to_write, file);
  bool flushed = std::fclose(file) == 0;
  fault_budget_used_ += static_cast<long long>(written);
  if (written != bytes.size() || !flushed) {
    return Status::Unavailable("short write to '" + tmp_path + "'");
  }
  CODB_RETURN_IF_ERROR(RenameFile(tmp_path, final_path));

  ++next_seq_;
  ++checkpoints_written_;
  bytes_written_ += bytes.size();

  // Retention: drop the oldest files beyond the keep-count.
  CODB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ListDirectory(directory_));
  std::vector<std::string> checkpoints;
  for (const std::string& name : names) {
    if (IsCheckpointName(name)) checkpoints.push_back(name);
  }
  for (size_t i = 0; i + static_cast<size_t>(keep_) < checkpoints.size();
       ++i) {
    CODB_RETURN_IF_ERROR(RemoveFile(directory_ + "/" + checkpoints[i]));
  }
  return seq;
}

Result<CheckpointWriter::LoadResult> CheckpointWriter::LoadNewest(
    const std::string& directory) {
  CODB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ListDirectory(directory));
  std::vector<std::string> checkpoints;
  for (const std::string& name : names) {
    if (IsCheckpointName(name)) checkpoints.push_back(name);
  }
  bool saw_invalid = false;
  for (size_t i = checkpoints.size(); i-- > 0;) {
    const std::string path = directory + "/" + checkpoints[i];
    Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      saw_invalid = true;
      continue;
    }
    const std::vector<uint8_t>& b = bytes.value();
    constexpr size_t kPreamble = sizeof kMagic + 12;  // magic + len + crc
    if (b.size() < kPreamble ||
        std::memcmp(b.data(), kMagic, sizeof kMagic) != 0) {
      saw_invalid = true;
      continue;
    }
    std::vector<uint8_t> frame(b.begin() + sizeof kMagic,
                               b.begin() + kPreamble);
    WireReader framing(frame);
    uint64_t length = std::move(framing.ReadU64()).value();
    uint32_t crc = std::move(framing.ReadU32()).value();
    if (b.size() - kPreamble != length ||
        Crc32c(b.data() + kPreamble, length) != crc) {
      saw_invalid = true;
      continue;
    }
    std::vector<uint8_t> payload(b.begin() + kPreamble, b.end());
    Result<CheckpointData> data = DeserializePayload(payload);
    if (!data.ok()) {
      saw_invalid = true;
      continue;
    }
    LoadResult result;
    result.data = std::move(data).value();
    result.seq = CheckpointSeq(checkpoints[i]);
    result.fell_back = saw_invalid;
    return result;
  }
  return Status::NotFound(saw_invalid
                              ? "every checkpoint in '" + directory +
                                    "' is corrupt"
                              : "no checkpoint in '" + directory + "'");
}

}  // namespace codb
