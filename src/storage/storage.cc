#include "storage/storage.h"

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace codb {

Result<std::unique_ptr<DurableStorage>> DurableStorage::Open(
    StorageOptions options, Database* db, DurabilityStats* stats) {
  if (db == nullptr) {
    return Status::InvalidArgument("DurableStorage needs a database");
  }
  if (options.directory.empty()) {
    return Status::InvalidArgument("DurableStorage needs a directory");
  }
  auto storage = std::unique_ptr<DurableStorage>(
      new DurableStorage(std::move(options), db, stats));

  CODB_ASSIGN_OR_RETURN(storage->recovery_,
                        RecoveryManager::Recover(
                            storage->options_.directory, *db));
  if (storage->recovery_.checkpoint_loaded) {
    storage->retained_checkpoint_lsns_.push_back(
        storage->recovery_.checkpoint_lsn);
  }
  if (stats != nullptr) {
    ++stats->recoveries;
    stats->recovered_checkpoint_tuples +=
        storage->recovery_.checkpoint_tuples;
    stats->recovered_wal_records += storage->recovery_.wal_records_replayed;
    if (storage->recovery_.wal_tail_truncated) ++stats->torn_tails_truncated;
    stats->recovery_wall_micros += storage->recovery_.wall_micros;
  }

  CODB_ASSIGN_OR_RETURN(
      storage->wal_,
      FileWal::Open(storage->options_, storage->recovery_.next_lsn));
  if (stats != nullptr) ++stats->wal_segments_created;

  // A brand-new directory: make the current (seeded) database content
  // durable right away, otherwise a crash before the first checkpoint
  // would lose everything that predates the WAL.
  if (!storage->recovery_.checkpoint_loaded) {
    CODB_RETURN_IF_ERROR(storage->Checkpoint());
  }
  return storage;
}

void DurableStorage::LogInsert(const std::string& relation,
                               const Tuple& tuple) {
  ScopedSpan span(Tracer::Global().BeginSpanHere("storage.wal_append"));
  uint64_t segments_before = wal_->segments_created();
  Status appended = wal_->Append(relation, tuple);
  if (!appended.ok()) {
    last_error_ = appended;
    if (stats_ != nullptr) ++stats_->wal_append_failures;
    return;
  }
  if (stats_ != nullptr) {
    ++stats_->wal_records_appended;
    stats_->wal_bytes_appended = wal_->appended_bytes();
    stats_->wal_segments_created +=
        wal_->segments_created() - segments_before;
  }
  ++appends_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      appends_since_checkpoint_ >= options_.checkpoint_every) {
    Status checkpointed = Checkpoint();
    if (!checkpointed.ok()) last_error_ = checkpointed;
  }
}

Status DurableStorage::Checkpoint() {
  ScopedSpan span(Tracer::Global().BeginSpanHere("storage.checkpoint"));
  Stopwatch wall;
  CheckpointData data;
  data.wal_lsn = wal_ != nullptr ? wal_->next_lsn() - 1
                                 : recovery_.next_lsn - 1;
  data.snapshot = db_->Snapshot();
  uint64_t bytes_before = checkpoint_writer_.bytes_written();
  CODB_ASSIGN_OR_RETURN(uint64_t seq, checkpoint_writer_.Write(data));
  (void)seq;
  appends_since_checkpoint_ = 0;

  retained_checkpoint_lsns_.push_back(data.wal_lsn);
  while (retained_checkpoint_lsns_.size() >
         static_cast<size_t>(options_.checkpoints_to_keep < 1
                                 ? 1
                                 : options_.checkpoints_to_keep)) {
    retained_checkpoint_lsns_.pop_front();
  }
  if (wal_ != nullptr) {
    CODB_RETURN_IF_ERROR(
        wal_->PruneThrough(retained_checkpoint_lsns_.front()));
  }
  if (stats_ != nullptr) {
    ++stats_->checkpoints_written;
    stats_->checkpoint_bytes_written +=
        checkpoint_writer_.bytes_written() - bytes_before;
    stats_->checkpoint_wall_micros += wall.ElapsedSeconds() * 1e6;
  }
  return Status::Ok();
}

}  // namespace codb
