// Configuration of the durable storage subsystem (WAL + checkpoints).
//
// Every knob has a production-sensible default; tests shrink the segment
// size to force rotation and use the fault-injection hooks to exercise
// torn-write recovery deterministically.

#ifndef CODB_STORAGE_STORAGE_OPTIONS_H_
#define CODB_STORAGE_STORAGE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace codb {

// Deterministic write-failure injection for recovery tests: once the
// component has written `*_fail_after_bytes` bytes in total, the next
// write stops mid-way (a genuine torn tail on disk) and reports an error.
// -1 disables the hook.
struct FaultInjection {
  long long wal_fail_after_bytes = -1;
  long long checkpoint_fail_after_bytes = -1;
};

struct StorageOptions {
  // Directory holding this node's WAL segments and checkpoints. Created if
  // missing. Empty = durability disabled.
  std::string directory;

  // A WAL segment is rotated once it grows past this size.
  size_t segment_bytes = 1 << 20;

  // Automatic checkpoint every N WAL appends (0 = explicit Checkpoint()
  // calls only).
  uint64_t checkpoint_every = 0;

  // Flush policy: true flushes the stream after every append (a record is
  // durable the moment LogInsert returns); false flushes only on rotation,
  // checkpoint and close — faster, but a crash can lose the buffered tail
  // (which torn-tail recovery then truncates cleanly).
  bool flush_each_append = true;

  // How many checkpoint files to retain. Keeping at least two lets
  // recovery fall back to the previous checkpoint when the newest one is
  // corrupt; WAL segments are only pruned once no retained checkpoint
  // needs them.
  int checkpoints_to_keep = 2;

  FaultInjection fault;
};

}  // namespace codb

#endif  // CODB_STORAGE_STORAGE_OPTIONS_H_
