#include "storage/crc32c.h"

#include <array>

namespace codb {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace codb
