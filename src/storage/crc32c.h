// CRC32C (Castagnoli polynomial, reflected 0x82F63B78): the checksum
// guarding every durable record — WAL frames and checkpoint payloads.
// Chosen over plain CRC32 for its better error-detection properties on
// short records; software table implementation (no SSE4.2 dependency).

#ifndef CODB_STORAGE_CRC32C_H_
#define CODB_STORAGE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace codb {

// Running CRC: pass the previous result as `seed` to checksum in chunks.
uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(const std::vector<uint8_t>& bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

}  // namespace codb

#endif  // CODB_STORAGE_CRC32C_H_
