#include "storage/durability_stats.h"

#include "util/string_util.h"

namespace codb {

bool DurabilityStats::Any() const {
  return wal_records_appended != 0 || wal_bytes_appended != 0 ||
         wal_segments_created != 0 || wal_append_failures != 0 ||
         checkpoints_written != 0 || checkpoint_bytes_written != 0 ||
         recoveries != 0 || recovered_checkpoint_tuples != 0 ||
         recovered_wal_records != 0 || torn_tails_truncated != 0;
}

void DurabilityStats::Add(const DurabilityStats& other) {
  wal_records_appended += other.wal_records_appended;
  wal_bytes_appended += other.wal_bytes_appended;
  wal_segments_created += other.wal_segments_created;
  wal_append_failures += other.wal_append_failures;
  checkpoints_written += other.checkpoints_written;
  checkpoint_bytes_written += other.checkpoint_bytes_written;
  recoveries += other.recoveries;
  recovered_checkpoint_tuples += other.recovered_checkpoint_tuples;
  recovered_wal_records += other.recovered_wal_records;
  torn_tails_truncated += other.torn_tails_truncated;
  checkpoint_wall_micros += other.checkpoint_wall_micros;
  recovery_wall_micros += other.recovery_wall_micros;
}

void DurabilityStats::SerializeTo(WireWriter& writer) const {
  writer.WriteU64(wal_records_appended);
  writer.WriteU64(wal_bytes_appended);
  writer.WriteU64(wal_segments_created);
  writer.WriteU64(wal_append_failures);
  writer.WriteU64(checkpoints_written);
  writer.WriteU64(checkpoint_bytes_written);
  writer.WriteU64(recoveries);
  writer.WriteU64(recovered_checkpoint_tuples);
  writer.WriteU64(recovered_wal_records);
  writer.WriteU64(torn_tails_truncated);
  writer.WriteDouble(checkpoint_wall_micros);
  writer.WriteDouble(recovery_wall_micros);
}

Result<DurabilityStats> DurabilityStats::DeserializeFrom(WireReader& reader) {
  DurabilityStats stats;
  CODB_ASSIGN_OR_RETURN(stats.wal_records_appended, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.wal_bytes_appended, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.wal_segments_created, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.wal_append_failures, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.checkpoints_written, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.checkpoint_bytes_written, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.recoveries, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.recovered_checkpoint_tuples, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.recovered_wal_records, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.torn_tails_truncated, reader.ReadU64());
  CODB_ASSIGN_OR_RETURN(stats.checkpoint_wall_micros, reader.ReadDouble());
  CODB_ASSIGN_OR_RETURN(stats.recovery_wall_micros, reader.ReadDouble());
  return stats;
}

MetricsSnapshot DurabilityStats::ToSnapshot() const {
  MetricsSnapshot snapshot;
  snapshot.SetCounter("storage.wal.records", wal_records_appended);
  snapshot.SetCounter("storage.wal.bytes", wal_bytes_appended);
  snapshot.SetCounter("storage.wal.segments", wal_segments_created);
  snapshot.SetCounter("storage.wal.append_failures", wal_append_failures);
  snapshot.SetCounter("storage.checkpoints", checkpoints_written);
  snapshot.SetCounter("storage.checkpoint.bytes", checkpoint_bytes_written);
  snapshot.SetGauge("storage.checkpoint.wall_us",
                    static_cast<int64_t>(checkpoint_wall_micros));
  snapshot.SetCounter("storage.recoveries", recoveries);
  snapshot.SetCounter("storage.recovered.checkpoint_tuples",
                      recovered_checkpoint_tuples);
  snapshot.SetCounter("storage.recovered.wal_records",
                      recovered_wal_records);
  snapshot.SetCounter("storage.torn_tails", torn_tails_truncated);
  snapshot.SetGauge("storage.recovery.wall_us",
                    static_cast<int64_t>(recovery_wall_micros));
  return snapshot;
}

std::string DurabilityStats::Render() const {
  return ToSnapshot().Render();
}

}  // namespace codb
