// Minimal filesystem helpers for the storage subsystem. <filesystem> is
// deliberately avoided per house style; POSIX calls suffice on the
// platforms this repo targets.

#ifndef CODB_STORAGE_FS_UTIL_H_
#define CODB_STORAGE_FS_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace codb {

// Creates `path` (and missing parents) as a directory; ok if it exists.
Status EnsureDirectory(const std::string& path);

// Regular-file names directly inside `path`, sorted lexicographically
// (storage file names are zero-padded, so lexical order == numeric order).
Result<std::vector<std::string>> ListDirectory(const std::string& path);

// Whole-file read into memory; kNotFound if the file cannot be opened.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);

// Shrinks a file to `size` bytes (torn-tail truncation).
Status TruncateFile(const std::string& path, uint64_t size);

}  // namespace codb

#endif  // CODB_STORAGE_FS_UTIL_H_
