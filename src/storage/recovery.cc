#include "storage/recovery.h"

#include "storage/checkpoint.h"
#include "storage/fs_util.h"
#include "storage/wal_file.h"
#include "util/stopwatch.h"

namespace codb {

Result<RecoveryOutcome> RecoveryManager::Recover(
    const std::string& directory, Database& db) {
  Stopwatch wall;
  RecoveryOutcome outcome;
  CODB_RETURN_IF_ERROR(EnsureDirectory(directory));

  Result<CheckpointWriter::LoadResult> checkpoint =
      CheckpointWriter::LoadNewest(directory);
  if (checkpoint.ok()) {
    const CheckpointWriter::LoadResult& loaded = checkpoint.value();
    CODB_RETURN_IF_ERROR(db.Restore(loaded.data.snapshot));
    outcome.checkpoint_loaded = true;
    outcome.checkpoint_fell_back = loaded.fell_back;
    outcome.checkpoint_lsn = loaded.data.wal_lsn;
    for (const auto& [relation, tuples] : loaded.data.snapshot) {
      outcome.checkpoint_tuples += tuples.size();
    }
  } else if (checkpoint.status().code() != StatusCode::kNotFound) {
    return checkpoint.status();
  } else {
    // No usable checkpoint. If damaged files exist this is the "fall back
    // to full WAL replay" path; either way the WAL is replayed from LSN 0.
    outcome.checkpoint_fell_back =
        checkpoint.status().message().find("corrupt") != std::string::npos;
  }

  CODB_ASSIGN_OR_RETURN(
      FileWal::ReplayResult replay,
      FileWal::ReadAll(directory, outcome.checkpoint_lsn));
  for (const WalRecord& record : replay.records) {
    CODB_ASSIGN_OR_RETURN(Relation * relation, db.Get(record.relation));
    relation->Insert(record.tuple);
    ++outcome.wal_records_replayed;
  }
  outcome.wal_tail_truncated = replay.tail_truncated;
  outcome.wal_truncated_bytes = replay.truncated_bytes;
  outcome.wal_stopped_early = replay.stopped_early;
  outcome.next_lsn = replay.next_lsn;
  outcome.wall_micros = wall.ElapsedSeconds() * 1e6;
  return outcome;
}

}  // namespace codb
