// File-backed segmented write-ahead log.
//
// Unlike relation/wal.h (an in-memory journal serialized as one blob),
// this WAL streams every imported tuple to disk as it is logged, so a
// killed peer loses at most the unflushed tail of the current segment.
//
// On-disk layout, one directory per node:
//
//   wal-<start_lsn:020d>.seg
//     header:  "CODBWAL1" magic (8 bytes) + u64 start LSN
//     records: [u32 payload_len][u32 crc32c(payload)][payload]*
//     payload: u64 lsn, string relation, tuple   (wire layer framing)
//
// Segments rotate once they grow past StorageOptions::segment_bytes; a
// checkpoint later prunes segments it fully covers. Recovery reads the
// segments in LSN order and *truncates* a partially written (torn) or
// checksum-corrupt tail instead of failing — the durable prefix is always
// recovered. Fault-injection hooks produce genuine torn tails in tests.

#ifndef CODB_STORAGE_WAL_FILE_H_
#define CODB_STORAGE_WAL_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "relation/tuple.h"
#include "storage/storage_options.h"
#include "util/status.h"

namespace codb {

struct WalRecord {
  uint64_t lsn = 0;
  std::string relation;
  Tuple tuple;
};

class FileWal {
 public:
  // Opens the log for appending: a fresh segment starting at `next_lsn`
  // (recovery supplies the LSN after the last durable record; 1 for a
  // brand-new directory). Never appends into an old segment, so a torn
  // tail left by a crash can never be followed by valid records.
  static Result<std::unique_ptr<FileWal>> Open(const StorageOptions& options,
                                               uint64_t next_lsn);

  ~FileWal();
  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  // Appends one record (durable per the flush policy) and rotates the
  // segment if it grew past the limit.
  Status Append(const std::string& relation, const Tuple& tuple);

  Status Flush();

  // Deletes segments whose every record has lsn <= `lsn` (covered by a
  // retained checkpoint). The active segment is never pruned.
  Status PruneThrough(uint64_t lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }
  uint64_t segments_created() const { return segments_created_; }

  // -- recovery-side reading (static; no FileWal instance needed) ---------

  struct ReplayResult {
    std::vector<WalRecord> records;  // lsn > after_lsn, in order
    uint64_t next_lsn = 1;           // after the last durable record seen
    // A torn/corrupt tail in the newest segment was cut off (the file was
    // physically truncated to its valid prefix).
    bool tail_truncated = false;
    uint64_t truncated_bytes = 0;
    // Corruption in an *older* segment: replay stopped there and the
    // records before the damage were recovered; nothing is deleted.
    bool stopped_early = false;
  };

  // Reads every record with lsn > `after_lsn` from `directory`. Tolerates
  // torn tails, checksum corruption and empty segments — corrupt input
  // ends the replay (with the flags above), it never fails it; an error
  // is returned only for unreadable files.
  static Result<ReplayResult> ReadAll(const std::string& directory,
                                      uint64_t after_lsn);

  // Name of the segment starting at `start_lsn` ("wal-<020d>.seg").
  static std::string SegmentName(uint64_t start_lsn);

 private:
  FileWal(StorageOptions options, uint64_t next_lsn)
      : options_(std::move(options)), next_lsn_(next_lsn) {}

  Status OpenSegment(uint64_t start_lsn);
  Status CloseSegment();

  // Writes `bytes` honoring the fault-injection hook: a triggered fault
  // performs a short write (torn tail on disk) and reports failure.
  Status WriteRaw(const std::vector<uint8_t>& bytes);

  StorageOptions options_;
  uint64_t next_lsn_;
  std::FILE* segment_ = nullptr;
  std::string segment_path_;
  uint64_t segment_start_lsn_ = 0;
  size_t segment_size_ = 0;
  long long fault_budget_used_ = 0;  // bytes written, for fault injection

  uint64_t appended_records_ = 0;
  uint64_t appended_bytes_ = 0;
  uint64_t segments_created_ = 0;
};

}  // namespace codb

#endif  // CODB_STORAGE_WAL_FILE_H_
