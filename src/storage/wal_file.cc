#include "storage/wal_file.h"

#include <cstring>

#include "relation/wire.h"
#include "storage/crc32c.h"
#include "storage/fs_util.h"
#include "util/string_util.h"

namespace codb {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'D', 'B', 'W', 'A', 'L', '1'};
constexpr size_t kHeaderBytes = 16;  // magic + u64 start LSN
constexpr size_t kFrameBytes = 8;    // u32 length + u32 crc

uint32_t ReadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}

void AppendLe32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

bool IsSegmentName(const std::string& name) {
  return name.size() == 4 + 20 + 4 && name.rfind("wal-", 0) == 0 &&
         name.compare(name.size() - 4, 4, ".seg") == 0;
}

uint64_t SegmentStartLsn(const std::string& name) {
  return std::strtoull(name.c_str() + 4, nullptr, 10);
}

}  // namespace

std::string FileWal::SegmentName(uint64_t start_lsn) {
  return StrFormat("wal-%020llu.seg",
                   static_cast<unsigned long long>(start_lsn));
}

Result<std::unique_ptr<FileWal>> FileWal::Open(const StorageOptions& options,
                                               uint64_t next_lsn) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("FileWal needs a directory");
  }
  CODB_RETURN_IF_ERROR(EnsureDirectory(options.directory));
  auto wal = std::unique_ptr<FileWal>(new FileWal(options, next_lsn));
  CODB_RETURN_IF_ERROR(wal->OpenSegment(next_lsn));
  return wal;
}

FileWal::~FileWal() { CloseSegment(); }

Status FileWal::OpenSegment(uint64_t start_lsn) {
  segment_path_ = options_.directory + "/" + SegmentName(start_lsn);
  segment_ = std::fopen(segment_path_.c_str(), "wb");
  if (segment_ == nullptr) {
    return Status::Unavailable("cannot open '" + segment_path_ +
                               "' for writing");
  }
  segment_start_lsn_ = start_lsn;
  segment_size_ = 0;
  ++segments_created_;

  std::vector<uint8_t> header(kMagic, kMagic + sizeof kMagic);
  WireWriter writer;
  writer.WriteU64(start_lsn);
  std::vector<uint8_t> lsn_bytes = writer.Take();
  header.insert(header.end(), lsn_bytes.begin(), lsn_bytes.end());
  CODB_RETURN_IF_ERROR(WriteRaw(header));
  segment_size_ = header.size();
  if (std::fflush(segment_) != 0) {
    return Status::Unavailable("flush of '" + segment_path_ + "' failed");
  }
  return Status::Ok();
}

Status FileWal::CloseSegment() {
  if (segment_ == nullptr) return Status::Ok();
  bool ok = std::fclose(segment_) == 0;
  segment_ = nullptr;
  if (!ok) {
    return Status::Unavailable("close of '" + segment_path_ + "' failed");
  }
  return Status::Ok();
}

Status FileWal::WriteRaw(const std::vector<uint8_t>& bytes) {
  long long threshold = options_.fault.wal_fail_after_bytes;
  if (threshold >= 0 &&
      fault_budget_used_ + static_cast<long long>(bytes.size()) > threshold) {
    // Injected crash: write only the bytes that "made it to disk", leaving
    // a genuine torn tail, and keep failing from now on.
    size_t partial = threshold > fault_budget_used_
                         ? static_cast<size_t>(threshold - fault_budget_used_)
                         : 0;
    if (partial > 0) std::fwrite(bytes.data(), 1, partial, segment_);
    std::fflush(segment_);
    fault_budget_used_ += static_cast<long long>(bytes.size());
    return Status::Unavailable("injected WAL write failure");
  }
  size_t written = bytes.empty()
                       ? 0
                       : std::fwrite(bytes.data(), 1, bytes.size(), segment_);
  fault_budget_used_ += static_cast<long long>(written);
  if (written != bytes.size()) {
    return Status::Unavailable("short write to '" + segment_path_ + "'");
  }
  return Status::Ok();
}

Status FileWal::Append(const std::string& relation, const Tuple& tuple) {
  if (segment_ == nullptr) {
    return Status::FailedPrecondition("WAL segment is not open");
  }
  WireWriter payload_writer;
  payload_writer.WriteU64(next_lsn_);
  payload_writer.WriteString(relation);
  payload_writer.WriteTuple(tuple);
  std::vector<uint8_t> payload = payload_writer.Take();

  std::vector<uint8_t> frame;
  frame.reserve(kFrameBytes + payload.size());
  AppendLe32(frame, static_cast<uint32_t>(payload.size()));
  AppendLe32(frame, Crc32c(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());

  CODB_RETURN_IF_ERROR(WriteRaw(frame));
  if (options_.flush_each_append && std::fflush(segment_) != 0) {
    return Status::Unavailable("flush of '" + segment_path_ + "' failed");
  }

  ++next_lsn_;
  ++appended_records_;
  appended_bytes_ += frame.size();
  segment_size_ += frame.size();
  if (segment_size_ >= options_.segment_bytes) {
    CODB_RETURN_IF_ERROR(CloseSegment());
    CODB_RETURN_IF_ERROR(OpenSegment(next_lsn_));
  }
  return Status::Ok();
}

Status FileWal::Flush() {
  if (segment_ != nullptr && std::fflush(segment_) != 0) {
    return Status::Unavailable("flush of '" + segment_path_ + "' failed");
  }
  return Status::Ok();
}

Status FileWal::PruneThrough(uint64_t lsn) {
  CODB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ListDirectory(options_.directory));
  std::vector<std::string> segments;
  for (const std::string& name : names) {
    if (IsSegmentName(name)) segments.push_back(name);
  }
  // Segment i spans [start_i, start_{i+1}); it is disposable once the
  // checkpoint covers everything before the next segment's first record.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (SegmentStartLsn(segments[i]) == segment_start_lsn_) continue;
    if (SegmentStartLsn(segments[i + 1]) <= lsn + 1) {
      CODB_RETURN_IF_ERROR(
          RemoveFile(options_.directory + "/" + segments[i]));
    }
  }
  return Status::Ok();
}

Result<FileWal::ReplayResult> FileWal::ReadAll(const std::string& directory,
                                               uint64_t after_lsn) {
  ReplayResult result;
  uint64_t last_lsn = after_lsn;  // pruned records are covered up to here

  CODB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        ListDirectory(directory));
  std::vector<std::string> segments;
  for (const std::string& name : names) {
    if (IsSegmentName(name)) segments.push_back(name);
  }

  for (size_t i = 0; i < segments.size(); ++i) {
    const bool newest = i + 1 == segments.size();
    const std::string path = directory + "/" + segments[i];
    CODB_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
    if (bytes.empty()) continue;  // rotation crashed before the header

    size_t good_end = 0;
    bool damaged = false;
    if (bytes.size() < kHeaderBytes ||
        std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
      damaged = true;  // torn or corrupt header: no usable records
    } else {
      size_t pos = kHeaderBytes;
      good_end = pos;
      while (pos < bytes.size()) {
        if (bytes.size() - pos < kFrameBytes) {
          damaged = true;  // torn frame header
          break;
        }
        uint32_t length = ReadLe32(bytes.data() + pos);
        uint32_t crc = ReadLe32(bytes.data() + pos + 4);
        if (bytes.size() - pos - kFrameBytes < length) {
          damaged = true;  // torn payload
          break;
        }
        const uint8_t* payload = bytes.data() + pos + kFrameBytes;
        if (Crc32c(payload, length) != crc) {
          damaged = true;  // bit rot or torn overwrite
          break;
        }
        std::vector<uint8_t> payload_bytes(payload, payload + length);
        WireReader reader(payload_bytes);
        WalRecord record;
        Result<uint64_t> lsn = reader.ReadU64();
        Result<std::string> relation =
            lsn.ok() ? reader.ReadString()
                     : Result<std::string>(lsn.status());
        Result<Tuple> tuple = relation.ok()
                                  ? reader.ReadTuple()
                                  : Result<Tuple>(relation.status());
        if (!tuple.ok() || !reader.AtEnd()) {
          damaged = true;  // checksum matched but content is malformed
          break;
        }
        record.lsn = lsn.value();
        record.relation = std::move(relation).value();
        record.tuple = std::move(tuple).value();
        if (record.lsn > last_lsn) last_lsn = record.lsn;
        if (record.lsn > after_lsn) {
          result.records.push_back(std::move(record));
        }
        pos += kFrameBytes + length;
        good_end = pos;
      }
    }

    if (damaged) {
      if (newest) {
        // Torn tail: cut the file back to its valid prefix so the damage
        // is gone for good, and recover everything before it.
        CODB_RETURN_IF_ERROR(TruncateFile(path, good_end));
        result.tail_truncated = true;
        result.truncated_bytes = bytes.size() - good_end;
      } else {
        // Damage in the middle of the log: LSN continuity is broken, so
        // later segments cannot be applied safely. Keep them on disk for
        // forensics and recover the prefix.
        result.stopped_early = true;
      }
      break;
    }
  }

  result.next_lsn = last_lsn + 1;
  return result;
}

}  // namespace codb
