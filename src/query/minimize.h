// Conjunctive-query minimization (core computation).
//
// Removes redundant body atoms: an atom is redundant when dropping it
// yields an equivalent query (checked with Chandra–Merlin containment).
// The result is the query's *core* — the unique (up to renaming) minimal
// equivalent conjunction. Useful for tidying machine-generated rules and
// as a join-cost optimization before evaluation.
//
// Same restrictions as query/containment.h: single head atom, safe head,
// no comparison predicates; anything else reports kInvalidArgument.

#ifndef CODB_QUERY_MINIMIZE_H_
#define CODB_QUERY_MINIMIZE_H_

#include "query/ast.h"
#include "util/status.h"

namespace codb {

Result<ConjunctiveQuery> MinimizeQuery(const ConjunctiveQuery& query,
                                       const DatabaseSchema& schema);

}  // namespace codb

#endif  // CODB_QUERY_MINIMIZE_H_
