// Abstract syntax of conjunctive queries (CQs) and the building blocks of
// GLAV coordination rules.
//
// A coordination rule is an inclusion of conjunctive queries
//
//     head_1(..), .., head_k(..)  :-  body_1(..), .., body_m(..), comps
//
// where the head is a conjunctive query over the *importer's* schema (and
// may contain existentially quantified variables: head variables that do
// not occur in the body), the body is a conjunctive query over the
// *exporter's* schema, and `comps` is a set of comparison predicates
// constraining the domain of body variables (paper, section 2).

#ifndef CODB_QUERY_AST_H_
#define CODB_QUERY_AST_H_

#include <set>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/value.h"
#include "util/status.h"

namespace codb {

// A term is a variable (by name) or a constant value.
class Term {
 public:
  static Term Var(std::string name) {
    Term t;
    t.is_var_ = true;
    t.var_ = std::move(name);
    return t;
  }
  static Term Const(Value value) {
    Term t;
    t.is_var_ = false;
    t.value_ = std::move(value);
    return t;
  }

  bool is_var() const { return is_var_; }
  const std::string& var() const { return var_; }
  const Value& value() const { return value_; }

  std::string ToString() const {
    return is_var_ ? var_ : value_.ToString();
  }

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_var_ != b.is_var_) return false;
    return a.is_var_ ? a.var_ == b.var_ : a.value_ == b.value_;
  }

 private:
  bool is_var_ = true;
  std::string var_;
  Value value_;
};

// A relational atom: predicate(t1, .., tn).
struct Atom {
  std::string predicate;
  std::vector<Term> terms;

  int arity() const { return static_cast<int>(terms.size()); }
  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.terms == b.terms;
  }
};

enum class ComparisonOp {
  kEq,   // =
  kNeq,  // !=
  kLt,   // <
  kLeq,  // <=
  kGt,   // >
  kGeq,  // >=
};

const char* ComparisonOpName(ComparisonOp op);

// Evaluates `lhs op rhs` on concrete values. Ordering comparisons between
// non-comparable types (e.g. marked null < int) are false.
bool EvalComparison(const Value& lhs, ComparisonOp op, const Value& rhs);

// A comparison predicate between two terms, e.g. X < 5 or X != Y.
struct Comparison {
  Term lhs;
  ComparisonOp op = ComparisonOp::kEq;
  Term rhs;

  std::string ToString() const;

  friend bool operator==(const Comparison& a, const Comparison& b) {
    return a.lhs == b.lhs && a.op == b.op && a.rhs == b.rhs;
  }
};

// A conjunctive query (also the syntactic body+head of a GLAV rule).
struct ConjunctiveQuery {
  std::vector<Atom> head;  // one or more atoms
  std::vector<Atom> body;
  std::vector<Comparison> comparisons;

  // Variables occurring in the body atoms (not comparisons).
  std::set<std::string> BodyVars() const;
  // Variables occurring in head atoms.
  std::set<std::string> HeadVars() const;
  // Head variables with no body occurrence: the existentials of a GLAV head.
  std::set<std::string> ExistentialVars() const;

  // Well-formedness:
  //  * at least one head atom and at least one body atom,
  //  * safety: every comparison variable occurs in some body atom,
  //  * (queries, not rules, additionally forbid existentials; callers that
  //    need that check use ExistentialVars()).
  Status Validate() const;

  // Checks predicates/arities of the body against `body_schema` and of the
  // head against `head_schema`, and that each variable is used at a single
  // type. For plain queries both schemas are the node's own DBS.
  Status TypeCheck(const DatabaseSchema& body_schema,
                   const DatabaseSchema& head_schema) const;

  // Body-only variant for plain queries, whose head predicate is a
  // virtual answer relation that no schema declares.
  Status TypeCheckBody(const DatabaseSchema& body_schema) const;

  // "q(X, Y) :- r(X, Z), s(Z, Y), Z > 5."
  std::string ToString() const;

  friend bool operator==(const ConjunctiveQuery& a,
                         const ConjunctiveQuery& b) {
    return a.head == b.head && a.body == b.body &&
           a.comparisons == b.comparisons;
  }
};

}  // namespace codb

#endif  // CODB_QUERY_AST_H_
