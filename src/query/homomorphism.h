// Homomorphisms between database instances with marked nulls.
//
// The distributed global-update algorithm is sound and complete w.r.t. the
// reference semantics up to the renaming of marked nulls: the instance a
// node computes and the instance the centralized oracle computes must be
// *homomorphically equivalent* (each maps into the other, with constants
// fixed and nulls mapped to arbitrary values). The tests use this module to
// verify exactly that.

#ifndef CODB_QUERY_HOMOMORPHISM_H_
#define CODB_QUERY_HOMOMORPHISM_H_

#include <map>
#include <string>
#include <vector>

#include "relation/database.h"
#include "relation/tuple.h"

namespace codb {

// A database instance as plain data: relation name -> tuple set. This is
// the exchange format between nodes/oracle snapshots and the checker.
using Instance = std::map<std::string, std::vector<Tuple>>;

// True iff there is a homomorphism from `from` into `to`: a mapping h on
// values that is the identity on non-null values, maps marked nulls to
// arbitrary values (consistently), and maps every tuple of every relation
// of `from` to a tuple present in `to`. Backtracking search; exponential in
// the number of distinct nulls in `from` in the worst case, fine for test
// instances.
bool HasHomomorphism(const Instance& from, const Instance& to);

// Homomorphic equivalence in both directions.
bool HomEquivalent(const Instance& a, const Instance& b);

// The null-free subset of an instance (its "certain" part). Two
// hom-equivalent instances have identical certain parts, which gives the
// tests a fast necessary condition with readable failure output.
Instance CertainPart(const Instance& instance);

}  // namespace codb

#endif  // CODB_QUERY_HOMOMORPHISM_H_
