// Conjunctive-query evaluation over a Database.
//
// A CompiledQuery is the analyzed/planned form of a ConjunctiveQuery body:
// variables are numbered, subgoals are reordered greedily (bound-variable
// count first, then relation size) and executed as an index-nested-loop
// backtracking join with comparison predicates applied as early as their
// variables are bound.
//
// Two evaluation modes:
//   * Evaluate        — over the full database;
//   * EvaluateDelta   — semi-naive: only derivations using at least one
//     tuple of a delta batch for some occurrence of the updated relation
//     (the "substituting R by T'" step of the paper's section 3,
//     generalized to bodies referencing the updated relation repeatedly).
//
// Results are *frontier tuples*: projections of the body bindings onto an
// explicit list of output variables (for plain queries, the head's
// distinguished variables; for GLAV rules, the head variables shared with
// the body). Dedup is applied to the projection.

#ifndef CODB_QUERY_EVALUATOR_H_
#define CODB_QUERY_EVALUATOR_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "relation/database.h"
#include "util/status.h"

namespace codb {

class CompiledQuery {
 public:
  // `query` must Validate(); its body is checked against `body_schema`.
  // `output_vars` must be body variables; they define the frontier layout.
  static Result<CompiledQuery> Compile(const ConjunctiveQuery& query,
                                       const DatabaseSchema& body_schema,
                                       std::vector<std::string> output_vars);

  // Frontier tuples of the body over `db`, deduplicated.
  std::vector<Tuple> Evaluate(const Database& db) const;

  // Frontier tuples of derivations that use at least one tuple of `delta`
  // in place of some body occurrence of `delta_relation`. `db` must already
  // contain the delta tuples (the caller inserts first, then runs deltas),
  // so non-delta occurrences see the *new* state.
  std::vector<Tuple> EvaluateDelta(const Database& db,
                                   const std::string& delta_relation,
                                   const std::vector<Tuple>& delta) const;

  const std::vector<std::string>& output_vars() const { return output_vars_; }

  // True if some body atom references `relation`.
  bool UsesRelation(const std::string& relation) const;

  // Human-readable execution plan against `db`: the greedy subgoal order
  // the evaluator will use, with the access path (index probe vs scan)
  // and current cardinality of each subgoal. Diagnostic only.
  std::string ExplainPlan(const Database& db) const;

 private:
  // One body slot: a variable (by dense id) or a constant.
  struct Slot {
    bool is_var = false;
    int var = -1;
    Value constant;
  };
  struct CompiledAtom {
    std::string predicate;
    std::vector<Slot> slots;
  };
  struct CompiledComparison {
    Slot lhs;
    ComparisonOp op = ComparisonOp::kEq;
    Slot rhs;
  };

  // Greedy subgoal ordering shared by Run and ExplainPlan.
  std::vector<int> ComputeOrder(const Database& db, int forced_first) const;

  // Join driver. `forced_first`: index into atoms_ evaluated first against
  // `forced_rows` instead of the database (delta mode); -1 for none.
  void Run(const Database& db, int forced_first,
           const std::vector<Tuple>* forced_rows,
           std::vector<Tuple>& out) const;

  void Join(const Database& db, const std::vector<int>& order, size_t depth,
            int forced_first, const std::vector<Tuple>* forced_rows,
            std::vector<Value>& binding, std::vector<bool>& bound,
            std::vector<Tuple>& out) const;

  bool TryBindTuple(const CompiledAtom& atom, const Tuple& tuple,
                    std::vector<Value>& binding, std::vector<bool>& bound,
                    std::vector<int>& newly_bound) const;

  bool ComparisonsHold(const std::vector<Value>& binding,
                       const std::vector<bool>& bound) const;

  std::vector<CompiledAtom> atoms_;
  std::vector<CompiledComparison> comparisons_;
  std::vector<std::string> var_names_;      // dense id -> name
  std::vector<std::string> output_vars_;    // frontier layout
  std::vector<int> output_ids_;             // frontier var ids
};

}  // namespace codb

#endif  // CODB_QUERY_EVALUATOR_H_
