// Conjunctive-query evaluation over a Database.
//
// A CompiledQuery is the analyzed/planned form of a ConjunctiveQuery body:
// variables are numbered, subgoals are reordered greedily (bound-variable
// count first, then relation size) and executed as an index-nested-loop
// backtracking join with comparison predicates applied as early as their
// variables are bound.
//
// Two evaluation modes:
//   * Evaluate        — over the full database;
//   * EvaluateDelta   — semi-naive: only derivations using at least one
//     tuple of a delta batch for some occurrence of the updated relation
//     (the "substituting R by T'" step of the paper's section 3,
//     generalized to bodies referencing the updated relation repeatedly).
//
// Results are *frontier tuples*: projections of the body bindings onto an
// explicit list of output variables (for plain queries, the head's
// distinguished variables; for GLAV rules, the head variables shared with
// the body). Dedup happens inline at the join leaves against a hash set, so
// duplicate projections are dropped as they are produced — including across
// the per-occurrence passes of EvaluateDelta — and never materialized.
//
// Hot-path machinery (all per-instance, reused across calls):
//   * plan cache    — the greedy subgoal order depends only on the forced
//     atom and the log2 size buckets of the body relations, so computed
//     orders are memoized on that key and reused while sizes stay in the
//     same buckets;
//   * probe slots   — each join level probes on *all* bound/constant
//     columns at once: one bound column uses the single-column index,
//     several use a composite index (see Relation::ProbeComposite);
//   * scratch state — bindings, per-depth probe buffers and the dedup set
//     live in a mutable scratch reused across Run calls.
//
// Parallelism (EvalOptions): with num_threads > 1 and a ThreadPool, the
// candidate rows of the *first* subgoal are split into contiguous chunks
// evaluated by pool workers, each against a private scratch; the chunk
// outputs are then merged in chunk order through the shared dedup set.
// Because a worker-local dedup only drops tuples an earlier candidate in
// the same chunk already produced — tuples the sequential run would have
// dropped too — and the in-order merge re-applies global dedup, the
// output sequence is byte-identical to the sequential one. All indexes a
// plan can probe are pre-built before workers start (static probe sets:
// the bound-variable set at each depth depends only on the subgoal
// order), so workers only ever read relations.
//
// Concurrency contract: a CompiledQuery instance still must not be
// *entered* concurrently (the shared scratch and plan cache are not
// locked); parallelism happens inside one Evaluate call. This matches
// the per-flow serialization of the core managers (DESIGN.md §10).

#ifndef CODB_QUERY_EVALUATOR_H_
#define CODB_QUERY_EVALUATOR_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "query/ast.h"
#include "relation/database.h"
#include "util/status.h"

namespace codb {

class ThreadPool;

// Knobs for one evaluation pass. The default is the sequential path,
// byte-identical to the pre-parallelism engine.
struct EvalOptions {
  // Total ways of parallelism including the calling thread; 1 = inline.
  int num_threads = 1;
  // Required when num_threads > 1 (typically core::Node's pool).
  ThreadPool* pool = nullptr;
  // First-subgoal candidate count below which the parallel path is not
  // worth the scratch setup and merge; fall back to sequential.
  size_t min_parallel_rows = 32;
};

class CompiledQuery {
 public:
  // `query` must Validate(); its body is checked against `body_schema`.
  // `output_vars` must be body variables; they define the frontier layout.
  static Result<CompiledQuery> Compile(const ConjunctiveQuery& query,
                                       const DatabaseSchema& body_schema,
                                       std::vector<std::string> output_vars);

  // Frontier tuples of the body over `db`, deduplicated.
  std::vector<Tuple> Evaluate(const Database& db) const {
    return Evaluate(db, EvalOptions());
  }
  std::vector<Tuple> Evaluate(const Database& db,
                              const EvalOptions& options) const;

  // Frontier tuples of derivations that use at least one tuple of `delta`
  // in place of some body occurrence of `delta_relation`. `db` must already
  // contain the delta tuples (the caller inserts first, then runs deltas),
  // so non-delta occurrences see the *new* state.
  std::vector<Tuple> EvaluateDelta(const Database& db,
                                   const std::string& delta_relation,
                                   const std::vector<Tuple>& delta) const {
    return EvaluateDelta(db, delta_relation, delta, EvalOptions());
  }
  std::vector<Tuple> EvaluateDelta(const Database& db,
                                   const std::string& delta_relation,
                                   const std::vector<Tuple>& delta,
                                   const EvalOptions& options) const;

  const std::vector<std::string>& output_vars() const { return output_vars_; }

  // True if some body atom references `relation`.
  bool UsesRelation(const std::string& relation) const;

  // Human-readable execution plan against `db`: the greedy subgoal order
  // the evaluator will use, with the access path (index probe vs scan)
  // and current cardinality of each subgoal. Diagnostic only.
  std::string ExplainPlan(const Database& db) const;

 private:
  // One body slot: a variable (by dense id) or a constant.
  struct Slot {
    bool is_var = false;
    int var = -1;
    Value constant;
  };
  struct CompiledAtom {
    std::string predicate;
    std::vector<Slot> slots;
  };
  struct CompiledComparison {
    Slot lhs;
    ComparisonOp op = ComparisonOp::kEq;
    Slot rhs;
  };

  // Reusable evaluation state. The instance-level scratch_ serves the
  // sequential path; the parallel path gives each worker its own.
  struct Scratch {
    std::vector<Value> binding;
    std::vector<char> bound;  // char, not bool: avoids bitset proxies
    std::unordered_set<Tuple, TupleHash> seen;
    std::vector<Value> frontier;
    // Per-join-depth buffers so recursion levels do not share them.
    std::vector<std::vector<int>> probe_columns;
    std::vector<std::vector<Value>> probe_keys;
    std::vector<std::vector<int>> newly_bound;
    std::vector<int> fallback_order;
    // Body atom -> relation, resolved once per Run; Join levels run once
    // per candidate binding of their parent and must not repeat the
    // name lookup.
    std::vector<const Relation*> atom_rels;
  };

  // Greedy subgoal ordering shared by Run and ExplainPlan. Reads relation
  // sizes through scratch_.atom_rels (see ResolveAtoms).
  std::vector<int> ComputeOrder(int forced_first) const;

  // Resolves every body atom's relation into scratch_.atom_rels.
  void ResolveAtoms(const Database& db) const;

  // Empties scratch_.seen for a new evaluation, replacing the table when a
  // past large run left it with far more buckets than elements.
  void ResetSeen() const;

  // Memoized ComputeOrder: reuses a cached order while every body relation
  // stays within the same log2 size bucket. Falls back to a fresh
  // computation for bodies too large to key compactly.
  const std::vector<int>& CachedOrder(int forced_first) const;

  // Join driver. `forced_first`: index into atoms_ evaluated first against
  // `forced_rows` instead of the database (delta mode); -1 for none.
  // Frontier tuples are appended to `out` after passing scratch_.seen.
  void Run(const Database& db, int forced_first,
           const std::vector<Tuple>* forced_rows, std::vector<Tuple>& out,
           const EvalOptions& options) const;

  // Sizes the per-variable and per-depth buffers of `s` for a Run.
  void PrepareScratch(Scratch& s) const;

  // The parallel Run body. Returns false (leaving `out` untouched) when
  // the pass is too small or has no parallelizable shape, in which case
  // the caller falls back to the sequential Join.
  bool TryParallelJoin(const std::vector<int>& order, int forced_first,
                       const std::vector<Tuple>* forced_rows,
                       std::vector<Tuple>& out,
                       const EvalOptions& options) const;

  // Eagerly builds every relation index the plan can probe, so worker
  // threads never mutate a relation's lazy index state.
  void PrebuildIndexes(const std::vector<int>& order,
                       int forced_first) const;

  void Join(Scratch& s, const std::vector<int>& order, size_t depth,
            int forced_first, const std::vector<Tuple>* forced_rows,
            std::vector<Tuple>& out) const;

  bool TryBindTuple(Scratch& s, const CompiledAtom& atom, const Tuple& tuple,
                    std::vector<int>& newly_bound) const;

  bool ComparisonsHold(const Scratch& s) const;

  std::vector<CompiledAtom> atoms_;
  std::vector<CompiledComparison> comparisons_;
  std::vector<std::string> var_names_;      // dense id -> name
  std::vector<std::string> output_vars_;    // frontier layout
  std::vector<int> output_ids_;             // frontier var ids

  mutable Scratch scratch_;
  mutable std::unordered_map<uint64_t, std::vector<int>> plan_cache_;
};

}  // namespace codb

#endif  // CODB_QUERY_EVALUATOR_H_
