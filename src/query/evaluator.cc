#include "query/evaluator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <map>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace codb {

Result<CompiledQuery> CompiledQuery::Compile(
    const ConjunctiveQuery& query, const DatabaseSchema& body_schema,
    std::vector<std::string> output_vars) {
  CODB_RETURN_IF_ERROR(query.Validate());

  CompiledQuery compiled;
  std::map<std::string, int> var_ids;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] =
        var_ids.emplace(name, static_cast<int>(var_ids.size()));
    if (inserted) compiled.var_names_.push_back(name);
    return it->second;
  };

  for (const Atom& atom : query.body) {
    const RelationSchema* rel = body_schema.FindRelation(atom.predicate);
    if (rel == nullptr) {
      return Status::NotFound("body predicate '" + atom.predicate +
                              "' not in schema");
    }
    if (rel->arity() != atom.arity()) {
      return Status::InvalidArgument(
          "atom " + atom.ToString() + " arity mismatch vs schema " +
          rel->ToString());
    }
    CompiledAtom ca;
    ca.predicate = atom.predicate;
    for (const Term& term : atom.terms) {
      Slot slot;
      if (term.is_var()) {
        slot.is_var = true;
        slot.var = intern(term.var());
      } else {
        slot.constant = term.value();
      }
      ca.slots.push_back(std::move(slot));
    }
    compiled.atoms_.push_back(std::move(ca));
  }

  for (const Comparison& c : query.comparisons) {
    CompiledComparison cc;
    cc.op = c.op;
    for (auto [term, slot] : {std::pair{&c.lhs, &cc.lhs},
                              std::pair{&c.rhs, &cc.rhs}}) {
      if (term->is_var()) {
        auto it = var_ids.find(term->var());
        if (it == var_ids.end()) {
          return Status::InvalidArgument("comparison variable '" +
                                         term->var() + "' not in body");
        }
        slot->is_var = true;
        slot->var = it->second;
      } else {
        slot->constant = term->value();
      }
    }
    compiled.comparisons_.push_back(std::move(cc));
  }

  for (const std::string& name : output_vars) {
    auto it = var_ids.find(name);
    if (it == var_ids.end()) {
      return Status::InvalidArgument("output variable '" + name +
                                     "' does not occur in the body");
    }
    compiled.output_ids_.push_back(it->second);
  }
  compiled.output_vars_ = std::move(output_vars);
  return compiled;
}

bool CompiledQuery::UsesRelation(const std::string& relation) const {
  for (const CompiledAtom& atom : atoms_) {
    if (atom.predicate == relation) return true;
  }
  return false;
}

std::vector<Tuple> CompiledQuery::Evaluate(const Database& db,
                                           const EvalOptions& options) const {
  // Auto-context span: records only when tracing is on AND an enclosing
  // span (an update/query handler) provides the node context.
  ScopedSpan span(Tracer::Global().BeginSpanHere("eval.full"));
  std::vector<Tuple> out;
  ResetSeen();
  Run(db, /*forced_first=*/-1, /*forced_rows=*/nullptr, out, options);
  return out;
}

std::vector<Tuple> CompiledQuery::EvaluateDelta(
    const Database& db, const std::string& delta_relation,
    const std::vector<Tuple>& delta, const EvalOptions& options) const {
  // A new derivation must use a delta tuple for at least one occurrence of
  // the updated relation. Running one pass per occurrence with the other
  // occurrences reading the full (already-updated) relation covers every
  // such derivation; scratch_.seen is shared across the passes, so a
  // frontier derived by several occurrences still comes out once.
  std::vector<Tuple> out;
  if (delta.empty()) return out;
  ScopedSpan span(Tracer::Global().BeginSpanHere("eval.delta"));
  ResetSeen();
  // Most delta derivations yield on the order of one frontier per delta
  // tuple; pre-sizing skips the incremental rehashes of growing from empty.
  if (delta.size() > scratch_.seen.bucket_count()) {
    scratch_.seen.reserve(delta.size());
  }
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].predicate != delta_relation) continue;
    Run(db, static_cast<int>(i), &delta, out, options);
  }
  return out;
}

void CompiledQuery::ResetSeen() const {
  // clear() memsets the whole bucket array, so after one big evaluation a
  // long run of tiny delta evaluations would each pay for the large table.
  // Drop an oversized table instead of sweeping it.
  if (scratch_.seen.bucket_count() > 1024 &&
      scratch_.seen.size() * 8 < scratch_.seen.bucket_count()) {
    scratch_.seen = std::unordered_set<Tuple, TupleHash>();
  } else {
    scratch_.seen.clear();
  }
}

void CompiledQuery::ResolveAtoms(const Database& db) const {
  scratch_.atom_rels.resize(atoms_.size());
  for (size_t i = 0; i < atoms_.size(); ++i) {
    scratch_.atom_rels[i] = db.Find(atoms_[i].predicate);
  }
}

std::vector<int> CompiledQuery::ComputeOrder(int forced_first) const {
  // Greedy subgoal order: the forced atom first (delta mode), then by
  // (bound-variable count desc, relation size asc).
  std::vector<int> remaining;
  for (int i = 0; i < static_cast<int>(atoms_.size()); ++i) {
    if (i != forced_first) remaining.push_back(i);
  }
  std::vector<int> order;
  std::vector<bool> var_seen(var_names_.size(), false);
  auto mark_atom = [&](int idx) {
    for (const Slot& slot : atoms_[static_cast<size_t>(idx)].slots) {
      if (slot.is_var) var_seen[static_cast<size_t>(slot.var)] = true;
    }
  };
  if (forced_first >= 0) {
    order.push_back(forced_first);
    mark_atom(forced_first);
  }
  while (!remaining.empty()) {
    int best_pos = 0;
    int best_bound = -1;
    size_t best_size = 0;
    for (size_t p = 0; p < remaining.size(); ++p) {
      const CompiledAtom& atom = atoms_[static_cast<size_t>(remaining[p])];
      int bound_count = 0;
      for (const Slot& slot : atom.slots) {
        if (!slot.is_var || var_seen[static_cast<size_t>(slot.var)]) {
          ++bound_count;
        }
      }
      const Relation* rel =
          scratch_.atom_rels[static_cast<size_t>(remaining[p])];
      size_t size = rel != nullptr ? rel->size() : 0;
      if (bound_count > best_bound ||
          (bound_count == best_bound && size < best_size)) {
        best_bound = bound_count;
        best_size = size;
        best_pos = static_cast<int>(p);
      }
    }
    int chosen = remaining[static_cast<size_t>(best_pos)];
    remaining.erase(remaining.begin() + best_pos);
    order.push_back(chosen);
    mark_atom(chosen);
  }
  return order;
}

const std::vector<int>& CompiledQuery::CachedOrder(int forced_first) const {
  // Cache key: forced atom plus the log2 size bucket of every body
  // relation. The greedy planner only consumes relative sizes, so the order
  // is stable while each relation stays within a power-of-two band; a
  // relation crossing a band boundary produces a new key and a fresh plan.
  // Bodies with more than 8 atoms do not fit the 64-bit key; they are rare
  // (GLAV rule bodies are short) and simply recompute every call.
  if (atoms_.size() > 8) {
    scratch_.fallback_order = ComputeOrder(forced_first);
    return scratch_.fallback_order;
  }
  uint64_t key = static_cast<uint64_t>(forced_first + 1) & 0xFF;
  int shift = 8;
  for (const Relation* rel : scratch_.atom_rels) {
    uint64_t bucket =
        rel != nullptr
            ? static_cast<uint64_t>(std::bit_width(rel->size()))
            : 0;
    key |= bucket << shift;
    shift += 7;
  }
  auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) {
    it = plan_cache_.emplace(key, ComputeOrder(forced_first)).first;
  }
  return it->second;
}

std::string CompiledQuery::ExplainPlan(const Database& db) const {
  ResolveAtoms(db);
  std::vector<int> order = ComputeOrder(/*forced_first=*/-1);
  std::vector<bool> var_seen(var_names_.size(), false);
  std::string out = "plan:\n";
  for (size_t step = 0; step < order.size(); ++step) {
    const CompiledAtom& atom = atoms_[static_cast<size_t>(order[step])];
    // Access path mirrors Join: index probe on every bound/constant
    // column (composite when there are several), else scan.
    std::vector<int> probe_columns;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      const Slot& slot = atom.slots[i];
      if (!slot.is_var || var_seen[static_cast<size_t>(slot.var)]) {
        probe_columns.push_back(static_cast<int>(i));
      }
    }
    const Relation* rel = db.Find(atom.predicate);
    out += "  " + std::to_string(step + 1) + ". " + atom.predicate;
    if (probe_columns.size() == 1) {
      out += " [probe col " + std::to_string(probe_columns[0]) + "]";
    } else if (probe_columns.size() > 1) {
      out += " [probe cols";
      for (size_t i = 0; i < probe_columns.size(); ++i) {
        out += i == 0 ? " " : ",";
        out += std::to_string(probe_columns[i]);
      }
      out += "]";
    } else {
      out += " [scan]";
    }
    out += " rows=" +
           std::to_string(rel != nullptr ? rel->size() : 0) + "\n";
    for (const Slot& slot : atom.slots) {
      if (slot.is_var) var_seen[static_cast<size_t>(slot.var)] = true;
    }
  }
  return out;
}

void CompiledQuery::PrepareScratch(Scratch& s) const {
  s.binding.assign(var_names_.size(), Value());
  s.bound.assign(var_names_.size(), 0);
  if (s.probe_columns.size() < atoms_.size()) {
    s.probe_columns.resize(atoms_.size());
    s.probe_keys.resize(atoms_.size());
    s.newly_bound.resize(atoms_.size());
  }
}

void CompiledQuery::Run(const Database& db, int forced_first,
                        const std::vector<Tuple>* forced_rows,
                        std::vector<Tuple>& out,
                        const EvalOptions& options) const {
  ResolveAtoms(db);
  const std::vector<int>& order = CachedOrder(forced_first);
  PrepareScratch(scratch_);
  if (order.empty()) {
    Join(scratch_, order, 0, forced_first, forced_rows, out);
    return;
  }
  if (options.num_threads > 1 && options.pool != nullptr &&
      TryParallelJoin(order, forced_first, forced_rows, out, options)) {
    return;
  }
  Join(scratch_, order, 0, forced_first, forced_rows, out);
}

void CompiledQuery::PrebuildIndexes(const std::vector<int>& order,
                                    int forced_first) const {
  // The variables bound when the join reaches depth d are exactly the
  // variables of atoms order[0..d-1] — TryBindTuple binds every variable
  // slot of an atom — so the probe column set of each depth is a static
  // property of the plan. Build those indexes now, on this thread, so the
  // workers' probes are pure reads.
  std::vector<char> bound(var_names_.size(), 0);
  std::vector<int> cols;
  for (size_t depth = 0; depth < order.size(); ++depth) {
    int atom_index = order[depth];
    const CompiledAtom& atom = atoms_[static_cast<size_t>(atom_index)];
    if (atom_index != forced_first) {
      const Relation* rel =
          scratch_.atom_rels[static_cast<size_t>(atom_index)];
      if (rel != nullptr) {
        cols.clear();
        for (size_t i = 0; i < atom.slots.size(); ++i) {
          const Slot& slot = atom.slots[i];
          if (!slot.is_var || bound[static_cast<size_t>(slot.var)] != 0) {
            cols.push_back(static_cast<int>(i));
          }
        }
        if (cols.size() == 1) {
          rel->EnsureColumnIndex(cols[0]);
        } else if (cols.size() > 1) {
          rel->EnsureCompositeIndex(cols);
        }
      }
    }
    for (const Slot& slot : atom.slots) {
      if (slot.is_var) bound[static_cast<size_t>(slot.var)] = 1;
    }
  }
}

bool CompiledQuery::TryParallelJoin(const std::vector<int>& order,
                                    int forced_first,
                                    const std::vector<Tuple>* forced_rows,
                                    std::vector<Tuple>& out,
                                    const EvalOptions& options) const {
  // Gather the first subgoal's candidate rows through the same access
  // path the sequential Join would use at depth 0 (forced delta batch,
  // constant-column probe, or scan).
  int atom0 = order[0];
  const CompiledAtom& atom = atoms_[static_cast<size_t>(atom0)];
  std::vector<const Tuple*> candidates;
  if (atom0 == forced_first) {
    candidates.reserve(forced_rows->size());
    for (const Tuple& t : *forced_rows) candidates.push_back(&t);
  } else {
    const Relation* rel = scratch_.atom_rels[static_cast<size_t>(atom0)];
    if (rel == nullptr) return true;  // relation absent -> no matches
    std::vector<int> cols;
    std::vector<Value> keys;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      if (!atom.slots[i].is_var) {
        cols.push_back(static_cast<int>(i));
        keys.push_back(atom.slots[i].constant);
      }
    }
    if (cols.size() == 1) {
      for (uint32_t row : rel->Probe(cols[0], keys[0])) {
        candidates.push_back(&rel->rows()[row]);
      }
    } else if (cols.size() > 1) {
      for (uint32_t row : rel->ProbeComposite(cols, keys)) {
        candidates.push_back(&rel->rows()[row]);
      }
    } else {
      candidates.reserve(rel->size());
      for (const Tuple& t : rel->rows()) candidates.push_back(&t);
    }
  }
  if (candidates.size() < options.min_parallel_rows) return false;

  PrebuildIndexes(order, forced_first);

  size_t chunks = static_cast<size_t>(options.num_threads);
  if (chunks > candidates.size()) chunks = candidates.size();

  struct WorkerState {
    Scratch s;
    std::vector<Tuple> chunk_out;
  };
  std::vector<WorkerState> workers(chunks);
  std::vector<ThreadPool::Task> tasks;
  tasks.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    size_t begin = candidates.size() * c / chunks;
    size_t end = candidates.size() * (c + 1) / chunks;
    WorkerState* w = &workers[c];
    tasks.push_back([this, w, &candidates, begin, end, &order, &atom,
                     forced_first, forced_rows] {
      Scratch& s = w->s;
      s.atom_rels = scratch_.atom_rels;
      PrepareScratch(s);
      std::vector<int>& newly_bound = s.newly_bound[0];
      for (size_t i = begin; i < end; ++i) {
        newly_bound.clear();
        if (TryBindTuple(s, atom, *candidates[i], newly_bound) &&
            ComparisonsHold(s)) {
          Join(s, order, 1, forced_first, forced_rows, w->chunk_out);
        }
        for (int var : newly_bound) {
          s.bound[static_cast<size_t>(var)] = 0;
        }
      }
    });
  }
  options.pool->RunBatch(std::move(tasks));

  // Merge chunk outputs in chunk order through the shared dedup set. A
  // worker-local `seen` only suppressed tuples an earlier candidate in
  // the same chunk produced — which the sequential run would also have
  // suppressed — so re-applying global dedup here reproduces the exact
  // sequential output sequence (and, for delta passes, dedups against
  // previous occurrence passes sharing scratch_.seen).
  for (WorkerState& w : workers) {
    for (Tuple& t : w.chunk_out) {
      auto [it, inserted] = scratch_.seen.insert(std::move(t));
      if (inserted) out.push_back(*it);
    }
  }
  return true;
}

bool CompiledQuery::TryBindTuple(Scratch& s, const CompiledAtom& atom,
                                 const Tuple& tuple,
                                 std::vector<int>& newly_bound) const {
  for (size_t i = 0; i < atom.slots.size(); ++i) {
    const Slot& slot = atom.slots[i];
    const Value& v = tuple.at(static_cast<int>(i));
    if (!slot.is_var) {
      if (!(slot.constant == v)) return false;
      continue;
    }
    size_t var = static_cast<size_t>(slot.var);
    if (s.bound[var] != 0) {
      if (!(s.binding[var] == v)) return false;
    } else {
      s.binding[var] = v;
      s.bound[var] = 1;
      newly_bound.push_back(slot.var);
    }
  }
  return true;
}

bool CompiledQuery::ComparisonsHold(const Scratch& s) const {
  for (const CompiledComparison& c : comparisons_) {
    auto resolve = [&](const Slot& slot, Value& out_value) {
      if (!slot.is_var) {
        out_value = slot.constant;
        return true;
      }
      size_t var = static_cast<size_t>(slot.var);
      if (s.bound[var] == 0) return false;  // not yet decidable
      out_value = s.binding[var];
      return true;
    };
    Value lhs;
    Value rhs;
    if (!resolve(c.lhs, lhs) || !resolve(c.rhs, rhs)) continue;
    if (!EvalComparison(lhs, c.op, rhs)) return false;
  }
  return true;
}

void CompiledQuery::Join(Scratch& s, const std::vector<int>& order,
                         size_t depth, int forced_first,
                         const std::vector<Tuple>* forced_rows,
                         std::vector<Tuple>& out) const {
  if (depth == order.size()) {
    std::vector<Value>& frontier = s.frontier;
    frontier.clear();
    frontier.reserve(output_ids_.size());
    for (int id : output_ids_) {
      assert(s.bound[static_cast<size_t>(id)] != 0);
      frontier.push_back(s.binding[static_cast<size_t>(id)]);
    }
    // Inline dedup: the projection goes out exactly once, checked at the
    // leaf instead of a second materialize-and-filter pass.
    auto [it, inserted] = s.seen.emplace(frontier);
    if (inserted) out.push_back(*it);
    return;
  }

  int atom_index = order[depth];
  const CompiledAtom& atom = atoms_[static_cast<size_t>(atom_index)];

  auto consider = [&](const Tuple& tuple) {
    std::vector<int>& newly_bound =
        s.newly_bound[static_cast<size_t>(depth)];
    newly_bound.clear();
    if (TryBindTuple(s, atom, tuple, newly_bound) && ComparisonsHold(s)) {
      Join(s, order, depth + 1, forced_first, forced_rows, out);
    }
    for (int var : newly_bound) {
      s.bound[static_cast<size_t>(var)] = 0;
    }
  };

  // Candidate rows: the forced delta batch, an index probe on every
  // already-bound column (composite index when several are bound), or a
  // full scan.
  if (atom_index == forced_first) {
    for (const Tuple& t : *forced_rows) consider(t);
    return;
  }
  const Relation* rel = s.atom_rels[static_cast<size_t>(atom_index)];
  if (rel == nullptr) return;  // relation absent -> no matches

  std::vector<int>& probe_columns =
      s.probe_columns[static_cast<size_t>(depth)];
  std::vector<Value>& probe_keys = s.probe_keys[static_cast<size_t>(depth)];
  probe_columns.clear();
  probe_keys.clear();
  for (size_t i = 0; i < atom.slots.size(); ++i) {
    const Slot& slot = atom.slots[i];
    if (!slot.is_var) {
      probe_columns.push_back(static_cast<int>(i));
      probe_keys.push_back(slot.constant);
    } else if (s.bound[static_cast<size_t>(slot.var)] != 0) {
      probe_columns.push_back(static_cast<int>(i));
      probe_keys.push_back(s.binding[static_cast<size_t>(slot.var)]);
    }
  }

  if (probe_columns.size() == 1) {
    for (uint32_t row : rel->Probe(probe_columns[0], probe_keys[0])) {
      consider(rel->rows()[row]);
    }
  } else if (probe_columns.size() > 1) {
    for (uint32_t row : rel->ProbeComposite(probe_columns, probe_keys)) {
      consider(rel->rows()[row]);
    }
  } else {
    for (const Tuple& t : rel->rows()) consider(t);
  }
}

}  // namespace codb
