#include "query/evaluator.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <unordered_set>

#include "obs/trace.h"

namespace codb {

Result<CompiledQuery> CompiledQuery::Compile(
    const ConjunctiveQuery& query, const DatabaseSchema& body_schema,
    std::vector<std::string> output_vars) {
  CODB_RETURN_IF_ERROR(query.Validate());

  CompiledQuery compiled;
  std::map<std::string, int> var_ids;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] =
        var_ids.emplace(name, static_cast<int>(var_ids.size()));
    if (inserted) compiled.var_names_.push_back(name);
    return it->second;
  };

  for (const Atom& atom : query.body) {
    const RelationSchema* rel = body_schema.FindRelation(atom.predicate);
    if (rel == nullptr) {
      return Status::NotFound("body predicate '" + atom.predicate +
                              "' not in schema");
    }
    if (rel->arity() != atom.arity()) {
      return Status::InvalidArgument(
          "atom " + atom.ToString() + " arity mismatch vs schema " +
          rel->ToString());
    }
    CompiledAtom ca;
    ca.predicate = atom.predicate;
    for (const Term& term : atom.terms) {
      Slot slot;
      if (term.is_var()) {
        slot.is_var = true;
        slot.var = intern(term.var());
      } else {
        slot.constant = term.value();
      }
      ca.slots.push_back(std::move(slot));
    }
    compiled.atoms_.push_back(std::move(ca));
  }

  for (const Comparison& c : query.comparisons) {
    CompiledComparison cc;
    cc.op = c.op;
    for (auto [term, slot] : {std::pair{&c.lhs, &cc.lhs},
                              std::pair{&c.rhs, &cc.rhs}}) {
      if (term->is_var()) {
        auto it = var_ids.find(term->var());
        if (it == var_ids.end()) {
          return Status::InvalidArgument("comparison variable '" +
                                         term->var() + "' not in body");
        }
        slot->is_var = true;
        slot->var = it->second;
      } else {
        slot->constant = term->value();
      }
    }
    compiled.comparisons_.push_back(std::move(cc));
  }

  for (const std::string& name : output_vars) {
    auto it = var_ids.find(name);
    if (it == var_ids.end()) {
      return Status::InvalidArgument("output variable '" + name +
                                     "' does not occur in the body");
    }
    compiled.output_ids_.push_back(it->second);
  }
  compiled.output_vars_ = std::move(output_vars);
  return compiled;
}

bool CompiledQuery::UsesRelation(const std::string& relation) const {
  for (const CompiledAtom& atom : atoms_) {
    if (atom.predicate == relation) return true;
  }
  return false;
}

std::vector<Tuple> CompiledQuery::Evaluate(const Database& db) const {
  // Auto-context span: records only when tracing is on AND an enclosing
  // span (an update/query handler) provides the node context.
  ScopedSpan span(Tracer::Global().BeginSpanHere("eval.full"));
  std::vector<Tuple> out;
  Run(db, /*forced_first=*/-1, /*forced_rows=*/nullptr, out);
  std::unordered_set<Tuple, TupleHash> seen;
  std::vector<Tuple> deduped;
  for (Tuple& t : out) {
    if (seen.insert(t).second) deduped.push_back(std::move(t));
  }
  return deduped;
}

std::vector<Tuple> CompiledQuery::EvaluateDelta(
    const Database& db, const std::string& delta_relation,
    const std::vector<Tuple>& delta) const {
  // A new derivation must use a delta tuple for at least one occurrence of
  // the updated relation. Running one pass per occurrence with the other
  // occurrences reading the full (already-updated) relation covers every
  // such derivation; the union may repeat frontiers, which the per-pass
  // dedup below and the caller's sent-sets absorb.
  std::vector<Tuple> out;
  if (delta.empty()) return out;
  ScopedSpan span(Tracer::Global().BeginSpanHere("eval.delta"));
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (atoms_[i].predicate != delta_relation) continue;
    Run(db, static_cast<int>(i), &delta, out);
  }
  // Cross-pass dedup.
  std::unordered_set<Tuple, TupleHash> seen;
  std::vector<Tuple> deduped;
  for (Tuple& t : out) {
    if (seen.insert(t).second) deduped.push_back(std::move(t));
  }
  return deduped;
}

std::vector<int> CompiledQuery::ComputeOrder(const Database& db,
                                             int forced_first) const {
  // Greedy subgoal order: the forced atom first (delta mode), then by
  // (bound-variable count desc, relation size asc).
  std::vector<int> remaining;
  for (int i = 0; i < static_cast<int>(atoms_.size()); ++i) {
    if (i != forced_first) remaining.push_back(i);
  }
  std::vector<int> order;
  std::vector<bool> var_seen(var_names_.size(), false);
  auto mark_atom = [&](int idx) {
    for (const Slot& slot : atoms_[static_cast<size_t>(idx)].slots) {
      if (slot.is_var) var_seen[static_cast<size_t>(slot.var)] = true;
    }
  };
  if (forced_first >= 0) {
    order.push_back(forced_first);
    mark_atom(forced_first);
  }
  while (!remaining.empty()) {
    int best_pos = 0;
    int best_bound = -1;
    size_t best_size = 0;
    for (size_t p = 0; p < remaining.size(); ++p) {
      const CompiledAtom& atom = atoms_[static_cast<size_t>(remaining[p])];
      int bound_count = 0;
      for (const Slot& slot : atom.slots) {
        if (!slot.is_var || var_seen[static_cast<size_t>(slot.var)]) {
          ++bound_count;
        }
      }
      const Relation* rel = db.Find(atom.predicate);
      size_t size = rel != nullptr ? rel->size() : 0;
      if (bound_count > best_bound ||
          (bound_count == best_bound && size < best_size)) {
        best_bound = bound_count;
        best_size = size;
        best_pos = static_cast<int>(p);
      }
    }
    int chosen = remaining[static_cast<size_t>(best_pos)];
    remaining.erase(remaining.begin() + best_pos);
    order.push_back(chosen);
    mark_atom(chosen);
  }
  return order;
}

std::string CompiledQuery::ExplainPlan(const Database& db) const {
  std::vector<int> order = ComputeOrder(db, /*forced_first=*/-1);
  std::vector<bool> var_seen(var_names_.size(), false);
  std::string out = "plan:\n";
  for (size_t step = 0; step < order.size(); ++step) {
    const CompiledAtom& atom = atoms_[static_cast<size_t>(order[step])];
    // Access path: index probe on the first bound/constant slot, else scan.
    int probe_column = -1;
    for (size_t i = 0; i < atom.slots.size(); ++i) {
      const Slot& slot = atom.slots[i];
      if (!slot.is_var || var_seen[static_cast<size_t>(slot.var)]) {
        probe_column = static_cast<int>(i);
        break;
      }
    }
    const Relation* rel = db.Find(atom.predicate);
    out += "  " + std::to_string(step + 1) + ". " + atom.predicate;
    if (probe_column >= 0) {
      out += " [probe col " + std::to_string(probe_column) + "]";
    } else {
      out += " [scan]";
    }
    out += " rows=" +
           std::to_string(rel != nullptr ? rel->size() : 0) + "\n";
    for (const Slot& slot : atom.slots) {
      if (slot.is_var) var_seen[static_cast<size_t>(slot.var)] = true;
    }
  }
  return out;
}

void CompiledQuery::Run(const Database& db, int forced_first,
                        const std::vector<Tuple>* forced_rows,
                        std::vector<Tuple>& out) const {
  std::vector<int> order = ComputeOrder(db, forced_first);
  std::vector<Value> binding(var_names_.size());
  std::vector<bool> bound(var_names_.size(), false);
  Join(db, order, 0, forced_first, forced_rows, binding, bound, out);
}

bool CompiledQuery::TryBindTuple(const CompiledAtom& atom, const Tuple& tuple,
                                 std::vector<Value>& binding,
                                 std::vector<bool>& bound,
                                 std::vector<int>& newly_bound) const {
  for (size_t i = 0; i < atom.slots.size(); ++i) {
    const Slot& slot = atom.slots[i];
    const Value& v = tuple.at(static_cast<int>(i));
    if (!slot.is_var) {
      if (!(slot.constant == v)) return false;
      continue;
    }
    size_t var = static_cast<size_t>(slot.var);
    if (bound[var]) {
      if (!(binding[var] == v)) return false;
    } else {
      binding[var] = v;
      bound[var] = true;
      newly_bound.push_back(slot.var);
    }
  }
  return true;
}

bool CompiledQuery::ComparisonsHold(const std::vector<Value>& binding,
                                    const std::vector<bool>& bound) const {
  for (const CompiledComparison& c : comparisons_) {
    auto resolve = [&](const Slot& slot, Value& out_value) {
      if (!slot.is_var) {
        out_value = slot.constant;
        return true;
      }
      size_t var = static_cast<size_t>(slot.var);
      if (!bound[var]) return false;  // not yet decidable
      out_value = binding[var];
      return true;
    };
    Value lhs;
    Value rhs;
    if (!resolve(c.lhs, lhs) || !resolve(c.rhs, rhs)) continue;
    if (!EvalComparison(lhs, c.op, rhs)) return false;
  }
  return true;
}

void CompiledQuery::Join(const Database& db, const std::vector<int>& order,
                         size_t depth, int forced_first,
                         const std::vector<Tuple>* forced_rows,
                         std::vector<Value>& binding,
                         std::vector<bool>& bound,
                         std::vector<Tuple>& out) const {
  if (depth == order.size()) {
    std::vector<Value> frontier;
    frontier.reserve(output_ids_.size());
    for (int id : output_ids_) {
      assert(bound[static_cast<size_t>(id)]);
      frontier.push_back(binding[static_cast<size_t>(id)]);
    }
    out.emplace_back(std::move(frontier));
    return;
  }

  int atom_index = order[depth];
  const CompiledAtom& atom = atoms_[static_cast<size_t>(atom_index)];

  // Candidate rows: the forced delta batch, an index probe on the first
  // already-bound column, or a full scan.
  const Relation* rel = db.Find(atom.predicate);
  auto consider = [&](const Tuple& tuple) {
    std::vector<int> newly_bound;
    if (TryBindTuple(atom, tuple, binding, bound, newly_bound) &&
        ComparisonsHold(binding, bound)) {
      Join(db, order, depth + 1, forced_first, forced_rows, binding, bound,
           out);
    }
    for (int var : newly_bound) bound[static_cast<size_t>(var)] = false;
  };

  if (atom_index == forced_first) {
    for (const Tuple& t : *forced_rows) consider(t);
    return;
  }
  if (rel == nullptr) return;  // relation absent -> no matches

  int probe_column = -1;
  Value probe_key;
  for (size_t i = 0; i < atom.slots.size(); ++i) {
    const Slot& slot = atom.slots[i];
    if (!slot.is_var) {
      probe_column = static_cast<int>(i);
      probe_key = slot.constant;
      break;
    }
    if (bound[static_cast<size_t>(slot.var)]) {
      probe_column = static_cast<int>(i);
      probe_key = binding[static_cast<size_t>(slot.var)];
      break;
    }
  }

  if (probe_column >= 0) {
    for (const Tuple* t : rel->Probe(probe_column, probe_key)) consider(*t);
  } else {
    for (const Tuple& t : rel->rows()) consider(t);
  }
}

}  // namespace codb
