// GLAV coordination rules and their execution.
//
// A coordination rule lets the *importer* node fetch data from the
// *exporter* node (its acquaintance): the rule body is a conjunctive query
// over the exporter's schema, the head a conjunctive query over the
// importer's schema. Executing a rule means evaluating the body at the
// exporter and instantiating head tuples, minting fresh marked nulls for
// existential head variables (one per variable per firing, shared across
// the head atoms of that firing).
//
// Execution is split into two halves so dedup can happen in between:
//
//   frontier  = EvaluateFrontier(exporter db)      // distinguished bindings
//   fresh     = frontier \ sent_set                // caller-side dedup
//   tuples    = InstantiateHead(fresh, minter)     // nulls minted here
//
// The paper's sent-set dedup ("we delete from Ri those tuples which have
// been already sent") must operate on frontiers, not instantiated tuples:
// fresh nulls would make every re-instantiation look new.

#ifndef CODB_QUERY_RULE_H_
#define CODB_QUERY_RULE_H_

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "query/ast.h"
#include "query/evaluator.h"
#include "relation/database.h"
#include "util/status.h"

namespace codb {

// Source of fresh marked nulls. Each node owns one, keyed by its peer id,
// so labels are globally unique without coordination. The counter is
// atomic because a node's update and query managers share one minter and,
// under concurrent flow admission, run on different executor strands;
// each flow's null sequence stays deterministic because rule firings
// within a flow are serialized (DESIGN.md §10).
class NullMinter {
 public:
  explicit NullMinter(uint32_t peer) : peer_(peer) {}

  Value Mint() {
    return Value::Null(peer_, next_.fetch_add(1, std::memory_order_relaxed));
  }
  uint64_t minted() const { return next_.load(std::memory_order_relaxed); }

 private:
  uint32_t peer_;
  std::atomic<uint64_t> next_{0};
};

// One head tuple destined for a relation of the importer.
struct HeadTuple {
  std::string relation;
  Tuple tuple;

  friend bool operator==(const HeadTuple& a, const HeadTuple& b) {
    return a.relation == b.relation && a.tuple == b.tuple;
  }
};

class CoordinationRule {
 public:
  CoordinationRule() = default;
  CoordinationRule(std::string id, std::string importer, std::string exporter,
                   ConjunctiveQuery query)
      : id_(std::move(id)),
        importer_(std::move(importer)),
        exporter_(std::move(exporter)),
        query_(std::move(query)) {}

  const std::string& id() const { return id_; }
  const std::string& importer() const { return importer_; }
  const std::string& exporter() const { return exporter_; }
  const ConjunctiveQuery& query() const { return query_; }

  // Relations of the importer written by this rule (head predicates).
  std::vector<std::string> HeadRelations() const;
  // Relations of the exporter read by this rule (body predicates).
  std::vector<std::string> BodyRelations() const;

  bool HasExistentials() const { return !query_.ExistentialVars().empty(); }

  // Validates and type-checks against both schemas and builds the body
  // plan. Must be called before any evaluation.
  Status Compile(const DatabaseSchema& exporter_schema,
                 const DatabaseSchema& importer_schema);
  bool compiled() const { return compiled_.has_value(); }

  // Distinguished-variable bindings of the body over the exporter db.
  // The EvalOptions overloads thread the node's parallel-evaluation knobs
  // down to CompiledQuery.
  std::vector<Tuple> EvaluateFrontier(const Database& exporter_db) const {
    return EvaluateFrontier(exporter_db, EvalOptions());
  }
  std::vector<Tuple> EvaluateFrontier(const Database& exporter_db,
                                      const EvalOptions& options) const;

  // Same, restricted to derivations using `delta` for some occurrence of
  // `delta_relation` (see CompiledQuery::EvaluateDelta).
  std::vector<Tuple> EvaluateFrontierDelta(
      const Database& exporter_db, const std::string& delta_relation,
      const std::vector<Tuple>& delta) const {
    return EvaluateFrontierDelta(exporter_db, delta_relation, delta,
                                 EvalOptions());
  }
  std::vector<Tuple> EvaluateFrontierDelta(const Database& exporter_db,
                                           const std::string& delta_relation,
                                           const std::vector<Tuple>& delta,
                                           const EvalOptions& options) const;

  // Head tuples for one frontier binding; mints one fresh null per
  // existential variable, shared across this firing's head atoms.
  std::vector<HeadTuple> InstantiateHead(const Tuple& frontier,
                                         NullMinter& minter) const;

  // Same, appended to `out`: the per-firing hot path, so a batch of
  // firings shares one output vector instead of allocating one each.
  void InstantiateHeadInto(const Tuple& frontier, NullMinter& minter,
                           std::vector<HeadTuple>& out) const;

  // "rule r1: n2 <- n1 : head :- body." (importer <- exporter).
  std::string ToString() const;

 private:
  struct HeadSlot {
    enum class Kind { kFrontier, kExistential, kConstant } kind =
        Kind::kConstant;
    int index = -1;  // frontier position or existential position
    Value constant;
  };
  struct CompiledHeadAtom {
    std::string relation;
    std::vector<HeadSlot> slots;
  };
  struct Compiled {
    CompiledQuery body;
    std::vector<CompiledHeadAtom> head_atoms;
    int num_existentials = 0;
  };

  std::string id_;
  std::string importer_;
  std::string exporter_;
  ConjunctiveQuery query_;
  std::optional<Compiled> compiled_;
};

}  // namespace codb

#endif  // CODB_QUERY_RULE_H_
