// Parser for the datalog-style surface syntax of conjunctive queries and
// coordination-rule bodies.
//
// Grammar (informal):
//
//   query   :=  head ":-" body "."?
//   head    :=  atom ("," atom)*          // multi-atom heads = GLAV heads
//   body    :=  literal ("," literal)*
//   literal :=  atom | comparison
//   atom    :=  ident "(" term ("," term)* ")"
//   term    :=  VARIABLE | NUMBER | STRING
//   comparison := term op term,  op in  = != < <= > >=
//
// Identifiers starting with an upper-case letter (or '_') are variables;
// lower-case identifiers are predicate names; 'single quoted' strings and
// numbers (42, 3.5, -7) are constants.

#ifndef CODB_QUERY_PARSER_H_
#define CODB_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "util/status.h"

namespace codb {

// Parses one conjunctive query / rule text. Errors carry position info.
Result<ConjunctiveQuery> ParseQuery(std::string_view text);

// Parses a schema declaration: "r(a:int, b:string, c:double)".
Result<RelationSchema> ParseSchema(std::string_view text);

}  // namespace codb

#endif  // CODB_QUERY_PARSER_H_
