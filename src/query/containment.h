// Conjunctive-query containment (Chandra–Merlin).
//
// Q1 ⊆ Q2 iff there is a containment mapping from Q2 to Q1 — equivalently,
// iff evaluating Q2 over the canonical ("frozen") database of Q1 yields
// Q1's frozen head. Used by tests and by the link optimizer to detect
// subsumed coordination rules. Only comparison-free, single-head-atom
// queries are supported; anything else reports kInvalidArgument.

#ifndef CODB_QUERY_CONTAINMENT_H_
#define CODB_QUERY_CONTAINMENT_H_

#include "query/ast.h"
#include "util/status.h"

namespace codb {

// True iff every answer of q1 is an answer of q2 on every database
// (over `schema`, which both queries must type-check against).
Result<bool> IsContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2,
                         const DatabaseSchema& schema);

// Containment in both directions.
Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           const DatabaseSchema& schema);

}  // namespace codb

#endif  // CODB_QUERY_CONTAINMENT_H_
