#include "query/parser.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace codb {

namespace {

// Hand-rolled tokenizer + recursive-descent parser. The grammar is small
// enough that error messages matter more than parser structure.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<ConjunctiveQuery> ParseQuery() {
    ConjunctiveQuery query;
    // Head atoms up to ":-".
    for (;;) {
      CODB_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      query.head.push_back(std::move(atom));
      SkipSpace();
      if (TryConsume(",")) continue;
      if (TryConsume(":-")) break;
      return Error("expected ',' or ':-' after head atom");
    }
    // Body literals.
    for (;;) {
      SkipSpace();
      CODB_RETURN_IF_ERROR(ParseLiteral(query));
      SkipSpace();
      if (TryConsume(",")) continue;
      break;
    }
    SkipSpace();
    TryConsume(".");
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after query");
    }
    CODB_RETURN_IF_ERROR(query.Validate());
    return query;
  }

  Result<RelationSchema> ParseSchema() {
    SkipSpace();
    CODB_ASSIGN_OR_RETURN(std::string name, ParseIdent());
    if (!TryConsume("(")) return Error("expected '(' after relation name");
    std::vector<Attribute> attributes;
    for (;;) {
      SkipSpace();
      CODB_ASSIGN_OR_RETURN(std::string attr, ParseIdent());
      SkipSpace();
      if (!TryConsume(":")) return Error("expected ':' after attribute name");
      SkipSpace();
      CODB_ASSIGN_OR_RETURN(std::string type_name, ParseIdent());
      ValueType type;
      if (type_name == "int") {
        type = ValueType::kInt;
      } else if (type_name == "double") {
        type = ValueType::kDouble;
      } else if (type_name == "string") {
        type = ValueType::kString;
      } else {
        return Error("unknown attribute type '" + type_name + "'");
      }
      attributes.push_back({std::move(attr), type});
      SkipSpace();
      if (TryConsume(",")) continue;
      if (TryConsume(")")) break;
      return Error("expected ',' or ')' in attribute list");
    }
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing input after schema");
    return RelationSchema(std::move(name), std::move(attributes));
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_) +
                              " in \"" + std::string(text_) + "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool TryConsume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      ++pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Term> ParseTerm() {
    SkipSpace();
    char c = Peek();
    if (c == '\'') {
      // String constant.
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
      if (pos_ == text_.size()) return Error("unterminated string constant");
      std::string s(text_.substr(start, pos_ - start));
      ++pos_;  // closing quote
      return Term::Const(Value::String(std::move(s)));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      size_t start = pos_;
      if (c == '-') ++pos_;
      bool is_double = false;
      while (pos_ < text_.size()) {
        char digit = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(digit))) {
          ++pos_;
          continue;
        }
        // A '.' is a decimal point only if a digit follows; otherwise it
        // terminates the query ("r(X, 30)." vs "r(X, 3.5)").
        if (digit == '.' && !is_double && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
          is_double = true;
          ++pos_;
          continue;
        }
        break;
      }
      std::string num(text_.substr(start, pos_ - start));
      if (num.empty() || num == "-") return Error("malformed number");
      if (is_double) {
        return Term::Const(Value::Double(std::strtod(num.c_str(), nullptr)));
      }
      return Term::Const(
          Value::Int(std::strtoll(num.c_str(), nullptr, 10)));
    }
    CODB_ASSIGN_OR_RETURN(std::string ident, ParseIdent());
    char first = ident[0];
    if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
      return Term::Var(std::move(ident));
    }
    return Error("lower-case identifier '" + ident +
                 "' used as a term (variables start upper-case)");
  }

  Result<Atom> ParseAtom() {
    CODB_ASSIGN_OR_RETURN(std::string predicate, ParseIdent());
    if (!TryConsume("(")) return Error("expected '(' after predicate");
    Atom atom;
    atom.predicate = std::move(predicate);
    for (;;) {
      CODB_ASSIGN_OR_RETURN(Term term, ParseTerm());
      atom.terms.push_back(std::move(term));
      if (TryConsume(",")) continue;
      if (TryConsume(")")) break;
      return Error("expected ',' or ')' in atom");
    }
    return atom;
  }

  // A body literal is an atom (ident followed by '(') or a comparison.
  Status ParseLiteral(ConjunctiveQuery& query) {
    SkipSpace();
    size_t mark = pos_;
    char c = Peek();
    bool could_be_atom =
        std::isalpha(static_cast<unsigned char>(c)) &&
        std::islower(static_cast<unsigned char>(c));
    if (could_be_atom) {
      // Look ahead: predicate '(' means atom.
      Result<std::string> ident = ParseIdent();
      if (ident.ok() && Peek() == '(') {
        pos_ = mark;
        CODB_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
        query.body.push_back(std::move(atom));
        return Status::Ok();
      }
      pos_ = mark;
    }
    // Comparison: term op term.
    CODB_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    SkipSpace();
    ComparisonOp op;
    if (TryConsume("!=")) {
      op = ComparisonOp::kNeq;
    } else if (TryConsume("<=")) {
      op = ComparisonOp::kLeq;
    } else if (TryConsume(">=")) {
      op = ComparisonOp::kGeq;
    } else if (TryConsume("<")) {
      op = ComparisonOp::kLt;
    } else if (TryConsume(">")) {
      op = ComparisonOp::kGt;
    } else if (TryConsume("=")) {
      op = ComparisonOp::kEq;
    } else {
      return Error("expected comparison operator");
    }
    CODB_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    query.comparisons.push_back({std::move(lhs), op, std::move(rhs)});
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(std::string_view text) {
  return Parser(text).ParseQuery();
}

Result<RelationSchema> ParseSchema(std::string_view text) {
  return Parser(text).ParseSchema();
}

}  // namespace codb
