#include "query/minimize.h"

#include <set>

#include "query/containment.h"

namespace codb {

namespace {

// True if `query` stays safe without its `drop`-th body atom: the head
// variables must still occur in some remaining body atom.
bool StillSafe(const ConjunctiveQuery& query, size_t drop) {
  std::set<std::string> remaining_vars;
  for (size_t i = 0; i < query.body.size(); ++i) {
    if (i == drop) continue;
    for (const Term& term : query.body[i].terms) {
      if (term.is_var()) remaining_vars.insert(term.var());
    }
  }
  for (const std::string& v : query.HeadVars()) {
    if (remaining_vars.find(v) == remaining_vars.end()) return false;
  }
  return true;
}

}  // namespace

Result<ConjunctiveQuery> MinimizeQuery(const ConjunctiveQuery& query,
                                       const DatabaseSchema& schema) {
  CODB_RETURN_IF_ERROR(query.Validate());
  if (query.head.size() != 1 || !query.comparisons.empty() ||
      !query.ExistentialVars().empty()) {
    return Status::InvalidArgument(
        "minimization needs a single safe head and no comparisons");
  }

  ConjunctiveQuery current = query;
  bool changed = true;
  while (changed && current.body.size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.body.size(); ++i) {
      if (!StillSafe(current, i)) continue;
      ConjunctiveQuery candidate = current;
      candidate.body.erase(candidate.body.begin() + static_cast<long>(i));
      // Dropping an atom can only widen the query, so one direction
      // suffices: candidate ⊆ current means equivalence.
      CODB_ASSIGN_OR_RETURN(bool contained,
                            IsContained(candidate, current, schema));
      if (contained) {
        current = std::move(candidate);
        changed = true;
        break;  // restart over the smaller body
      }
    }
  }
  return current;
}

}  // namespace codb
