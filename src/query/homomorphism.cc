#include "query/homomorphism.h"

#include <algorithm>

namespace codb {

namespace {

// Flattened view: (relation, tuple) pairs of `from`, ordered so that tuples
// with fewer nulls come first (they constrain the search most).
struct Fact {
  const std::string* relation;
  const Tuple* tuple;
  int null_count;
};

int CountNulls(const Tuple& t) {
  int n = 0;
  for (const Value& v : t) {
    if (v.is_null()) ++n;
  }
  return n;
}

// Tries to extend the null mapping so that h(fact) equals `candidate`.
// Returns the list of nulls newly mapped (for undo), or nullopt.
bool TryMatch(const Tuple& from, const Tuple& to,
              std::map<NullLabel, Value>& mapping,
              std::vector<NullLabel>& newly_mapped) {
  if (from.arity() != to.arity()) return false;
  for (int i = 0; i < from.arity(); ++i) {
    const Value& f = from.at(i);
    const Value& t = to.at(i);
    if (!f.is_null()) {
      if (!(f == t)) return false;
      continue;
    }
    auto it = mapping.find(f.AsNull());
    if (it != mapping.end()) {
      if (!(it->second == t)) return false;
    } else {
      mapping.emplace(f.AsNull(), t);
      newly_mapped.push_back(f.AsNull());
    }
  }
  return true;
}

bool Search(const std::vector<Fact>& facts, size_t index,
            const Instance& to, std::map<NullLabel, Value>& mapping) {
  if (index == facts.size()) return true;
  const Fact& fact = facts[index];
  auto it = to.find(*fact.relation);
  if (it == to.end()) return false;
  for (const Tuple& candidate : it->second) {
    std::vector<NullLabel> newly_mapped;
    if (TryMatch(*fact.tuple, candidate, mapping, newly_mapped)) {
      if (Search(facts, index + 1, to, mapping)) return true;
    }
    for (const NullLabel& label : newly_mapped) mapping.erase(label);
  }
  return false;
}

}  // namespace

bool HasHomomorphism(const Instance& from, const Instance& to) {
  std::vector<Fact> facts;
  for (const auto& [relation, tuples] : from) {
    for (const Tuple& t : tuples) {
      facts.push_back({&relation, &t, CountNulls(t)});
    }
  }
  // Ground facts first: they either match identically or fail fast, and
  // they don't branch.
  std::stable_sort(facts.begin(), facts.end(),
                   [](const Fact& a, const Fact& b) {
                     return a.null_count < b.null_count;
                   });
  std::map<NullLabel, Value> mapping;
  return Search(facts, 0, to, mapping);
}

bool HomEquivalent(const Instance& a, const Instance& b) {
  return HasHomomorphism(a, b) && HasHomomorphism(b, a);
}

Instance CertainPart(const Instance& instance) {
  Instance out;
  for (const auto& [relation, tuples] : instance) {
    std::vector<Tuple> ground;
    for (const Tuple& t : tuples) {
      if (!t.HasNull()) ground.push_back(t);
    }
    std::sort(ground.begin(), ground.end());
    out.emplace(relation, std::move(ground));
  }
  return out;
}

}  // namespace codb
