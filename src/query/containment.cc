#include "query/containment.h"

#include <map>

#include "query/evaluator.h"
#include "relation/database.h"

namespace codb {

namespace {

Status CheckSupported(const ConjunctiveQuery& q, const char* which) {
  CODB_RETURN_IF_ERROR(q.Validate());
  if (q.head.size() != 1) {
    return Status::InvalidArgument(
        std::string(which) + ": containment needs a single head atom");
  }
  if (!q.comparisons.empty()) {
    return Status::InvalidArgument(
        std::string(which) +
        ": containment with comparison predicates is not supported");
  }
  if (!q.ExistentialVars().empty()) {
    return Status::InvalidArgument(
        std::string(which) + ": containment needs a safe head");
  }
  return Status::Ok();
}

// Frozen constants are marked nulls from a reserved peer id: they are
// distinct from every constant that can appear in a query, and equality on
// them is label equality, which is exactly what freezing needs.
constexpr uint32_t kFrozenPeer = 0xFFFFFFFF;

Value Freeze(std::map<std::string, Value>& frozen, const std::string& var) {
  auto it = frozen.find(var);
  if (it == frozen.end()) {
    it = frozen.emplace(var, Value::Null(kFrozenPeer, frozen.size())).first;
  }
  return it->second;
}

}  // namespace

Result<bool> IsContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2,
                         const DatabaseSchema& schema) {
  CODB_RETURN_IF_ERROR(CheckSupported(q1, "q1"));
  CODB_RETURN_IF_ERROR(CheckSupported(q2, "q2"));
  CODB_RETURN_IF_ERROR(q1.TypeCheckBody(schema));
  CODB_RETURN_IF_ERROR(q2.TypeCheckBody(schema));

  const Atom& h1 = q1.head[0];
  const Atom& h2 = q2.head[0];
  if (h1.predicate != h2.predicate || h1.arity() != h2.arity()) {
    return false;
  }

  // Canonical database: freeze q1's body.
  Database canonical;
  std::map<std::string, Value> frozen;
  for (const Atom& atom : q1.body) {
    if (canonical.Find(atom.predicate) == nullptr) {
      const RelationSchema* rel = schema.FindRelation(atom.predicate);
      if (rel == nullptr) {
        return Status::NotFound("predicate '" + atom.predicate +
                                "' not in schema");
      }
      CODB_RETURN_IF_ERROR(canonical.CreateRelation(*rel));
    }
    std::vector<Value> values;
    for (const Term& term : atom.terms) {
      values.push_back(term.is_var() ? Freeze(frozen, term.var())
                                     : term.value());
    }
    canonical.Find(atom.predicate)->Insert(Tuple(std::move(values)));
  }

  // Frozen head of q1.
  std::vector<Value> target_values;
  for (const Term& term : h1.terms) {
    target_values.push_back(term.is_var() ? Freeze(frozen, term.var())
                                          : term.value());
  }
  Tuple target(std::move(target_values));

  // Evaluate q2 over the canonical database, producing head tuples.
  std::vector<std::string> q2_head_vars;
  for (const Term& term : h2.terms) {
    if (term.is_var()) q2_head_vars.push_back(term.var());
  }
  CODB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                        CompiledQuery::Compile(q2, schema, q2_head_vars));
  for (const Tuple& frontier : compiled.Evaluate(canonical)) {
    // Rebuild the head tuple of q2 under this binding.
    std::vector<Value> values;
    size_t var_pos = 0;
    for (const Term& term : h2.terms) {
      if (term.is_var()) {
        values.push_back(frontier.at(static_cast<int>(var_pos++)));
      } else {
        values.push_back(term.value());
      }
    }
    if (Tuple(std::move(values)) == target) return true;
  }
  return false;
}

Result<bool> AreEquivalent(const ConjunctiveQuery& q1,
                           const ConjunctiveQuery& q2,
                           const DatabaseSchema& schema) {
  CODB_ASSIGN_OR_RETURN(bool forward, IsContained(q1, q2, schema));
  if (!forward) return false;
  CODB_ASSIGN_OR_RETURN(bool backward, IsContained(q2, q1, schema));
  return backward;
}

}  // namespace codb
