#include "query/ast.h"

#include <map>

namespace codb {

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  out += ")";
  return out;
}

const char* ComparisonOpName(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kNeq:
      return "!=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLeq:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGeq:
      return ">=";
  }
  return "?";
}

bool EvalComparison(const Value& lhs, ComparisonOp op, const Value& rhs) {
  switch (op) {
    case ComparisonOp::kEq:
      return lhs == rhs;
    case ComparisonOp::kNeq:
      return !(lhs == rhs);
    default:
      break;
  }
  // Ordering comparisons: numeric if both sides numeric, lexicographic if
  // both strings; everything else (marked nulls, mixed kinds) is false —
  // a marked null carries no domain information to order by.
  bool holds;
  if (lhs.IsNumeric() && rhs.IsNumeric()) {
    double a = lhs.AsNumeric();
    double b = rhs.AsNumeric();
    holds = op == ComparisonOp::kLt    ? a < b
            : op == ComparisonOp::kLeq ? a <= b
            : op == ComparisonOp::kGt  ? a > b
                                       : a >= b;
  } else if (lhs.type() == ValueType::kString &&
             rhs.type() == ValueType::kString) {
    const std::string& a = lhs.AsString();
    const std::string& b = rhs.AsString();
    holds = op == ComparisonOp::kLt    ? a < b
            : op == ComparisonOp::kLeq ? a <= b
            : op == ComparisonOp::kGt  ? a > b
                                       : a >= b;
  } else {
    holds = false;
  }
  return holds;
}

std::string Comparison::ToString() const {
  return lhs.ToString() + " " + ComparisonOpName(op) + " " + rhs.ToString();
}

namespace {

void CollectVars(const std::vector<Atom>& atoms,
                 std::set<std::string>& vars) {
  for (const Atom& atom : atoms) {
    for (const Term& term : atom.terms) {
      if (term.is_var()) vars.insert(term.var());
    }
  }
}

}  // namespace

std::set<std::string> ConjunctiveQuery::BodyVars() const {
  std::set<std::string> vars;
  CollectVars(body, vars);
  return vars;
}

std::set<std::string> ConjunctiveQuery::HeadVars() const {
  std::set<std::string> vars;
  CollectVars(head, vars);
  return vars;
}

std::set<std::string> ConjunctiveQuery::ExistentialVars() const {
  std::set<std::string> body_vars = BodyVars();
  std::set<std::string> out;
  for (const std::string& v : HeadVars()) {
    if (body_vars.find(v) == body_vars.end()) out.insert(v);
  }
  return out;
}

Status ConjunctiveQuery::Validate() const {
  if (head.empty()) {
    return Status::InvalidArgument("query has no head atom");
  }
  if (body.empty()) {
    return Status::InvalidArgument("query has no body atom");
  }
  std::set<std::string> body_vars = BodyVars();
  for (const Comparison& c : comparisons) {
    for (const Term* t : {&c.lhs, &c.rhs}) {
      if (t->is_var() && body_vars.find(t->var()) == body_vars.end()) {
        return Status::InvalidArgument(
            "comparison variable '" + t->var() +
            "' does not occur in any body atom (unsafe)");
      }
    }
    if (!c.lhs.is_var() && !c.rhs.is_var()) {
      return Status::InvalidArgument(
          "comparison between two constants: " + c.ToString());
    }
  }
  return Status::Ok();
}

namespace {

Status TypeCheckAtoms(const std::vector<Atom>& atoms,
                      const DatabaseSchema& schema, const char* side,
                      std::map<std::string, ValueType>& var_types) {
  for (const Atom& atom : atoms) {
    const RelationSchema* rel = schema.FindRelation(atom.predicate);
    if (rel == nullptr) {
      return Status::NotFound(std::string(side) + " predicate '" +
                              atom.predicate + "' not in schema");
    }
    if (rel->arity() != atom.arity()) {
      return Status::InvalidArgument(
          std::string(side) + " atom " + atom.ToString() + " has arity " +
          std::to_string(atom.arity()) + ", schema says " +
          std::to_string(rel->arity()));
    }
    for (int i = 0; i < atom.arity(); ++i) {
      ValueType expected = rel->attributes()[static_cast<size_t>(i)].type;
      const Term& term = atom.terms[static_cast<size_t>(i)];
      if (term.is_var()) {
        auto [it, inserted] = var_types.emplace(term.var(), expected);
        if (!inserted && it->second != expected) {
          return Status::InvalidArgument(
              "variable '" + term.var() + "' used at both " +
              ValueTypeName(it->second) + " and " + ValueTypeName(expected));
        }
      } else if (term.value().type() != expected &&
                 !term.value().is_null()) {
        return Status::InvalidArgument(
            "constant " + term.value().ToString() + " in " +
            atom.ToString() + " position " + std::to_string(i) +
            " should have type " + ValueTypeName(expected));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status ConjunctiveQuery::TypeCheck(const DatabaseSchema& body_schema,
                                   const DatabaseSchema& head_schema) const {
  std::map<std::string, ValueType> var_types;
  CODB_RETURN_IF_ERROR(TypeCheckAtoms(body, body_schema, "body", var_types));
  CODB_RETURN_IF_ERROR(TypeCheckAtoms(head, head_schema, "head", var_types));
  return Status::Ok();
}

Status ConjunctiveQuery::TypeCheckBody(
    const DatabaseSchema& body_schema) const {
  std::map<std::string, ValueType> var_types;
  return TypeCheckAtoms(body, body_schema, "body", var_types);
}

std::string ConjunctiveQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += head[i].ToString();
  }
  out += " :- ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) out += ", ";
    out += body[i].ToString();
  }
  for (const Comparison& c : comparisons) {
    out += ", " + c.ToString();
  }
  out += ".";
  return out;
}

}  // namespace codb
