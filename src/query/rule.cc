#include "query/rule.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace codb {

namespace {

std::vector<std::string> UniquePredicates(const std::vector<Atom>& atoms) {
  std::vector<std::string> out;
  for (const Atom& atom : atoms) {
    if (std::find(out.begin(), out.end(), atom.predicate) == out.end()) {
      out.push_back(atom.predicate);
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> CoordinationRule::HeadRelations() const {
  return UniquePredicates(query_.head);
}

std::vector<std::string> CoordinationRule::BodyRelations() const {
  return UniquePredicates(query_.body);
}

Status CoordinationRule::Compile(const DatabaseSchema& exporter_schema,
                                 const DatabaseSchema& importer_schema) {
  CODB_RETURN_IF_ERROR(query_.Validate());
  CODB_RETURN_IF_ERROR(query_.TypeCheck(exporter_schema, importer_schema));

  // Frontier layout: the distinguished head variables in sorted order, so
  // the layout is deterministic regardless of head syntax.
  std::set<std::string> body_vars = query_.BodyVars();
  std::vector<std::string> frontier_vars;
  for (const std::string& v : query_.HeadVars()) {
    if (body_vars.count(v) > 0) frontier_vars.push_back(v);
  }
  // (HeadVars is a std::set, so frontier_vars is already sorted.)

  CODB_ASSIGN_OR_RETURN(
      CompiledQuery body,
      CompiledQuery::Compile(query_, exporter_schema, frontier_vars));

  Compiled compiled{std::move(body), {}, 0};

  std::map<std::string, int> frontier_index;
  for (size_t i = 0; i < frontier_vars.size(); ++i) {
    frontier_index[frontier_vars[i]] = static_cast<int>(i);
  }
  std::map<std::string, int> existential_index;
  for (const std::string& v : query_.ExistentialVars()) {
    existential_index.emplace(v, static_cast<int>(existential_index.size()));
  }
  compiled.num_existentials = static_cast<int>(existential_index.size());

  for (const Atom& atom : query_.head) {
    CompiledHeadAtom cha;
    cha.relation = atom.predicate;
    for (const Term& term : atom.terms) {
      HeadSlot slot;
      if (!term.is_var()) {
        slot.kind = HeadSlot::Kind::kConstant;
        slot.constant = term.value();
      } else if (auto it = frontier_index.find(term.var());
                 it != frontier_index.end()) {
        slot.kind = HeadSlot::Kind::kFrontier;
        slot.index = it->second;
      } else {
        slot.kind = HeadSlot::Kind::kExistential;
        slot.index = existential_index.at(term.var());
      }
      cha.slots.push_back(std::move(slot));
    }
    compiled.head_atoms.push_back(std::move(cha));
  }

  compiled_ = std::move(compiled);
  return Status::Ok();
}

std::vector<Tuple> CoordinationRule::EvaluateFrontier(
    const Database& exporter_db, const EvalOptions& options) const {
  assert(compiled_ && "Compile() must succeed before evaluation");
  return compiled_->body.Evaluate(exporter_db, options);
}

std::vector<Tuple> CoordinationRule::EvaluateFrontierDelta(
    const Database& exporter_db, const std::string& delta_relation,
    const std::vector<Tuple>& delta, const EvalOptions& options) const {
  assert(compiled_ && "Compile() must succeed before evaluation");
  return compiled_->body.EvaluateDelta(exporter_db, delta_relation, delta,
                                       options);
}

std::vector<HeadTuple> CoordinationRule::InstantiateHead(
    const Tuple& frontier, NullMinter& minter) const {
  std::vector<HeadTuple> out;
  out.reserve(compiled_ ? compiled_->head_atoms.size() : 0);
  InstantiateHeadInto(frontier, minter, out);
  return out;
}

void CoordinationRule::InstantiateHeadInto(
    const Tuple& frontier, NullMinter& minter,
    std::vector<HeadTuple>& out) const {
  assert(compiled_ && "Compile() must succeed before evaluation");
  // One fresh null per existential variable, shared by all head atoms of
  // this firing.
  std::vector<Value> nulls;
  nulls.reserve(static_cast<size_t>(compiled_->num_existentials));
  for (int i = 0; i < compiled_->num_existentials; ++i) {
    nulls.push_back(minter.Mint());
  }

  auto resolve = [&](const HeadSlot& slot) -> Value {
    switch (slot.kind) {
      case HeadSlot::Kind::kFrontier:
        return frontier.at(slot.index);
      case HeadSlot::Kind::kExistential:
        return nulls[static_cast<size_t>(slot.index)];
      case HeadSlot::Kind::kConstant:
        break;
    }
    return slot.constant;
  };
  for (const CompiledHeadAtom& atom : compiled_->head_atoms) {
    size_t width = atom.slots.size();
    if (width <= Tuple::kInlineCapacity) {
      // Common case: assemble on the stack, no heap traffic per firing.
      Value stack[Tuple::kInlineCapacity];
      for (size_t i = 0; i < width; ++i) stack[i] = resolve(atom.slots[i]);
      out.push_back({atom.relation, Tuple(stack, width)});
    } else {
      std::vector<Value> values;
      values.reserve(width);
      for (const HeadSlot& slot : atom.slots) {
        values.push_back(resolve(slot));
      }
      out.push_back({atom.relation, Tuple(values)});
    }
  }
}

std::string CoordinationRule::ToString() const {
  return "rule " + id_ + ": " + importer_ + " <- " + exporter_ + " : " +
         query_.ToString();
}

}  // namespace codb
